(** The factorized particle filter (§IV-B), optionally augmented with
    the spatial index (§IV-C) and belief compression (§IV-D).

    Instead of joint particles, the filter keeps J weighted {e reader
    particles} and, per object, K weighted {e object particles}, each
    holding a location hypothesis plus a pointer to the reader particle
    it was weighted against — Fig. 3(b)/(c) of the paper. Because the
    model and the proposal factorize identically (Eq. 5), the factored
    weight updates are equivalent to the unfactored ones while
    representing an exponentially larger joint particle set in linear
    space.

    With [Factorized_indexed] or [Factorized_compressed] variants, an
    R-tree over past sensing-region bounding boxes limits each epoch's
    work to the objects of Cases 1 and 2 (read now, or previously read
    near the current reader position); Case 4 objects' near-zero read
    probability is rounded to zero, Case 3 objects are invisible by
    construction (Fig. 4). With [Factorized_compressed], an object's
    particle cloud is collapsed to its moment-matched Gaussian once the
    object has been out of scope for a while, and re-expanded into a
    small particle set when the tag is read again.

    Objects are discovered from the stream; nothing about the object
    universe is declared up front. *)

type t

val create :
  world:Rfid_model.World.t ->
  params:Rfid_model.Params.t ->
  config:Config.t ->
  init_reader:Rfid_model.Reader_state.t ->
  rng:Rfid_prob.Rng.t ->
  t
(** The [config.variant] field selects plain [Factorized] (all known
    objects processed every epoch), [Factorized_indexed], or
    [Factorized_compressed]. [Unfactorized] is rejected.
    @raise Invalid_argument on [Unfactorized]. *)

val step : t -> Rfid_model.Types.observation -> unit
(** Advance one epoch. @raise Invalid_argument if observations arrive
    out of epoch order. *)

val estimate : t -> int -> (Rfid_geom.Vec3.t * Rfid_prob.Linalg.mat) option
(** Posterior mean and covariance of an object's location ([None] if the
    object was never read). Works on both particle and compressed
    representations. *)

val reader_estimate : t -> Rfid_geom.Vec3.t
(** Weighted posterior mean of the reader's location. *)

val newly_seen : t -> int list
(** Objects first read at the last {!step}, ascending. *)

val known_objects : t -> int list
(** Every object read so far, ascending. *)

val iter_known : t -> (int -> unit) -> unit
(** Visit every known object id in ascending order without building a
    list — backed by a sorted array maintained at discovery, so no
    per-call sort either. *)

val num_known : t -> int
(** Number of known objects, O(1). *)

(** {1 Change feed}

    The filter records which objects' posteriors may have changed
    since the consumer's last {!clear_changes}: the processed scope of
    every {!step} (word-wise bitset union, O(scope words)), belief
    compressions, and — via the {!changes_dirty_all} escape hatch —
    degraded-mode widening and {!restore}, which touch every object.
    The feed is conservative (a flagged object's estimate may be
    bitwise unchanged) but complete: an unflagged object's estimate is
    exactly what it was. Single consumer: whoever calls
    [clear_changes] owns the feed. *)

val changes_dirty_all : t -> bool
(** Every object must be treated as changed (widening or restore since
    the last {!clear_changes}). *)

val iter_dirty : t -> (int -> unit) -> unit
(** Visit the changed ids, ascending. Yields nothing while
    {!changes_dirty_all} holds — check it first. *)

val clear_changes : t -> unit
(** Consume the feed: empties the dirty set and lowers the
    everything-changed flag. *)

val epoch : t -> Rfid_model.Types.epoch
(** Epoch of the last processed observation (-1 before the first). *)

val dead_reckon :
  ?shelf_tags:int list -> t -> epoch:Rfid_model.Types.epoch -> unit
(** Advance one epoch {e without} a usable location fix (missing or
    rejected by the ingest guard): reader particles move by the motion
    model with proposal noise inflated by
    [config.degraded_noise_scale]. [shelf_tags] (default [[]], expected
    deduplicated and ascending) lists shelf tags read during the
    outage; their exactly-known positions re-weight the reader
    particles, localizing the dead-reckoned belief. With none, weights
    are unchanged. After [config.degraded_widen_after] consecutive
    dead-reckoned epochs, object beliefs additionally diffuse by
    [config.degraded_widen_sigma] per epoch (particle clouds are
    jittered and clamped to shelves; compressed Gaussians inflate their
    XY covariance). Deterministic: per-object randomness is keyed by
    (object id, epoch) as in {!step}.
    @raise Invalid_argument if [epoch] is not beyond the current one. *)

val degraded_epochs : t -> int
(** Total dead-reckoned epochs so far. *)

val consecutive_degraded : t -> int
(** Length of the current dead-reckoning run; 0 after any normal
    {!step}. *)

(** {1 Checkpointing} *)

(** Complete dynamic filter state as plain data: RNG states, reader
    particles, per-object beliefs, the spatial index's entries, and the
    compression queue. The representation is public so
    [Rfid_robust.Codec] can serialize it field by field into the
    portable checkpoint format; treat it as read-only elsewhere. Field
    and constructor order are part of the legacy (v1, Marshal)
    checkpoint format — do not add, remove or reorder without bumping
    it. *)

type belief_snapshot =
  | Snap_active of (Rfid_geom.Vec3.t * int * float) array
      (** particle (location, reader index, log weight) rows *)
  | Snap_compressed of float array * Rfid_prob.Linalg.mat  (** mean, cov *)

type obj_snapshot = {
  so_id : int;
  so_belief : belief_snapshot;
  so_reader_gen : int;
  so_last_read : int;
  so_last_read_reader : Rfid_geom.Vec3.t;
}

type index_snapshot = {
  si_entries : (Rfid_geom.Box2.t * int list) list;
  si_pending_objs : int list;
  si_pending_box : Rfid_geom.Box2.t option;
  si_last_insert_loc : Rfid_geom.Vec3.t option;
}

type snapshot = {
  fs_rng : int64;
  fs_substream : int64;
  fs_reader_gen : int;
  fs_readers : (Rfid_model.Reader_state.t * float) array;
  fs_objects : obj_snapshot list;  (** sorted by id *)
  fs_index : index_snapshot option;
  fs_compress_queue : (int * int) list;
  fs_last_reported : Rfid_geom.Vec3.t option;
  fs_epoch : int;
  fs_newly_seen : int list;
  fs_processed_last : int;
  fs_consecutive_degraded : int;
  fs_degraded_total : int;
}

val snapshot : t -> snapshot
(** Deep copy of the dynamic state; the filter can keep running. *)

val snapshot_epoch : snapshot -> int
(** Epoch at which the snapshot was taken (-1 for a fresh filter). *)

val restore :
  world:Rfid_model.World.t ->
  params:Rfid_model.Params.t ->
  config:Config.t ->
  snapshot ->
  t
(** Rebuild a filter from a snapshot plus the same static inputs it was
    created with. The restored filter's future output is bit-identical
    to the original's, for any [config.num_domains].
    @raise Invalid_argument if [config.variant] disagrees with the
    snapshot (e.g. an indexed snapshot restored as plain
    [Factorized]). *)

(** {1 Introspection (tests, benches)} *)

val objects_processed_last_step : t -> int
(** How many objects the last {!step} actually touched — the quantity
    the spatial index is designed to shrink. *)

val is_compressed : t -> int -> bool
(** Whether the object's belief currently lives in compressed (Gaussian)
    form. *)

val num_index_boxes : t -> int
(** Sensing-region boxes currently held by the spatial index (0 without
    an index). *)

val sensor_memo_hits : t -> int
(** Total sensor-likelihood evaluations served through the per-epoch
    reader-pose memo ({!Rfid_model.Sensor_model.precompute}), counted
    deterministically on the coordinator after each parallel pass. *)

val sensor_memo_size : t -> int
(** Pose slots currently held by the sensor memo (= the reader particle
    count). *)

val iter_reader_particles :
  t -> (Rfid_model.Reader_state.t -> float -> unit) -> unit
(** Visit every reader particle with its normalized weight — the E-step
    of EM calibration and white-box tests read the posterior this
    way. *)

val iter_object_particles :
  t ->
  int ->
  (Rfid_geom.Vec3.t -> float -> Rfid_model.Reader_state.t -> unit) ->
  unit
(** Visit an object's particles as (location, normalized weight,
    associated reader hypothesis). No-op for unknown or compressed
    objects. *)
