test/test_containment.ml: Alcotest Array Containment Format Gen List Option Params QCheck Rfid_core Rfid_geom Rfid_learn Rfid_model Rfid_prob Rfid_sim Rfid_stream Trace Union_find Util World
