open Rfid_prob

let test_uni_pdf () =
  let g = Gaussian.Univariate.create ~mu:0. ~sigma:1. in
  Util.check_close ~eps:1e-9 "standard normal at 0" (1. /. sqrt (2. *. Float.pi))
    (Gaussian.Univariate.pdf g 0.);
  Util.check_close ~eps:1e-9 "log pdf consistent" (log (Gaussian.Univariate.pdf g 1.))
    (Gaussian.Univariate.log_pdf g 1.)

let test_uni_cdf () =
  let g = Gaussian.Univariate.create ~mu:0. ~sigma:1. in
  Util.check_close ~eps:1e-6 "cdf(0)" 0.5 (Gaussian.Univariate.cdf g 0.);
  Util.check_close ~eps:1e-4 "cdf(1.96)" 0.975 (Gaussian.Univariate.cdf g 1.96);
  Util.check_close ~eps:1e-4 "cdf(-1.96)" 0.025 (Gaussian.Univariate.cdf g (-1.96))

let test_uni_degenerate () =
  let g = Gaussian.Univariate.create ~mu:3. ~sigma:0. in
  Alcotest.(check (float 0.)) "point mass elsewhere" neg_infinity
    (Gaussian.Univariate.log_pdf g 2.);
  Util.check_close "cdf step below" 0. (Gaussian.Univariate.cdf g 2.9);
  Util.check_close "cdf step above" 1. (Gaussian.Univariate.cdf g 3.1);
  Util.check_raises_invalid "negative sigma" (fun () ->
      Gaussian.Univariate.create ~mu:0. ~sigma:(-1.))

let test_uni_fit () =
  let g = Gaussian.Univariate.fit [| 1.; 2.; 3. |] in
  Util.check_close "fit mean" 2. g.Gaussian.Univariate.mu;
  Util.check_close "fit sd" (sqrt (2. /. 3.)) g.Gaussian.Univariate.sigma;
  let gw = Gaussian.Univariate.fit ~w:[| 1.; 0.; 0. |] [| 1.; 2.; 3. |] in
  Util.check_close "weighted fit mean" 1. gw.Gaussian.Univariate.mu

let mv2 () =
  Gaussian.create ~mean:[| 1.; 2. |] ~cov:[| [| 2.; 0.5 |]; [| 0.5; 1. |] |]

let test_mv_pdf_at_mean () =
  let g = mv2 () in
  (* pdf at mean = 1 / (2 pi sqrt |cov|); |cov| = 1.75 *)
  Util.check_close ~eps:1e-9 "log pdf at mean"
    (-.log (2. *. Float.pi) -. (0.5 *. log 1.75))
    (Gaussian.log_pdf g [| 1.; 2. |])

let test_mv_mahalanobis () =
  let g = Gaussian.create ~mean:[| 0.; 0. |] ~cov:(Linalg.identity 2) in
  Util.check_close "identity mahalanobis" 25. (Gaussian.mahalanobis_sq g [| 3.; 4. |]);
  Util.check_raises_invalid "dim mismatch" (fun () ->
      Gaussian.mahalanobis_sq g [| 1. |])

let test_mv_sample_moments () =
  let g = mv2 () in
  let rng = Util.rng () in
  let n = 50000 in
  let samples = Array.init n (fun _ -> Gaussian.sample g rng) in
  let mean0 = Stats.mean (Array.map (fun s -> s.(0)) samples) in
  let mean1 = Stats.mean (Array.map (fun s -> s.(1)) samples) in
  Util.check_close ~eps:0.03 "sample mean x" 1. mean0;
  Util.check_close ~eps:0.03 "sample mean y" 2. mean1;
  let cov01 =
    Stats.mean (Array.map (fun s -> (s.(0) -. 1.) *. (s.(1) -. 2.)) samples)
  in
  Util.check_close ~eps:0.05 "sample cov xy" 0.5 cov01

let test_mv_fit_roundtrip () =
  let g = mv2 () in
  let rng = Util.rng () in
  let samples = Array.init 50000 (fun _ -> Gaussian.sample g rng) in
  let fitted = Gaussian.fit samples in
  let m = Gaussian.mean fitted in
  Util.check_close ~eps:0.05 "refit mean x" 1. m.(0);
  Util.check_close ~eps:0.05 "refit mean y" 2. m.(1);
  let c = Gaussian.cov fitted in
  Util.check_close ~eps:0.08 "refit cov 00" 2. c.(0).(0);
  Util.check_close ~eps:0.08 "refit cov 01" 0.5 c.(0).(1)

let test_mv_weighted_fit () =
  (* All weight on two symmetric points: mean at center. *)
  let pts = [| [| 0.; 0. |]; [| 2.; 2. |]; [| 100.; -100. |] |] in
  let w = [| 0.5; 0.5; 0. |] in
  let g = Gaussian.fit ~w pts in
  let m = Gaussian.mean g in
  Util.check_close "weighted mean x" 1. m.(0);
  Util.check_close "weighted mean y" 1. m.(1)

let test_mv_fit_degenerate () =
  (* Identical points: covariance is zero; jitter must rescue. *)
  let pts = Array.make 10 [| 3.; 4.; 5. |] in
  let g = Gaussian.fit pts in
  let m = Gaussian.mean g in
  Util.check_close "degenerate mean" 3. m.(0);
  Alcotest.(check bool) "sampling works" true
    (Array.length (Gaussian.sample g (Util.rng ())) = 3)

let test_mv_invalid () =
  Util.check_raises_invalid "empty fit" (fun () -> Gaussian.fit [||]);
  Util.check_raises_invalid "ragged fit" (fun () ->
      Gaussian.fit [| [| 1. |]; [| 1.; 2. |] |]);
  Util.check_raises_invalid "cov dim mismatch" (fun () ->
      Gaussian.create ~mean:[| 0. |] ~cov:(Linalg.identity 2))

let test_avg_nll () =
  (* Points drawn from the model should have lower NLL under it than
     under a badly shifted model. *)
  let g = mv2 () in
  let rng = Util.rng () in
  let pts = Array.init 2000 (fun _ -> Gaussian.sample g rng) in
  let shifted = Gaussian.create ~mean:[| 10.; -10. |] ~cov:(Gaussian.cov g) in
  let nll_good = Gaussian.avg_nll g pts in
  let nll_bad = Gaussian.avg_nll shifted pts in
  Alcotest.(check bool) "model fits own samples better" true (nll_good < nll_bad)

let prop_fit_is_kl_optimal_mean =
  (* The moment-matched mean minimizes the weighted squared error, so
     perturbing it can only increase avg NLL. *)
  Util.qcheck ~count:60 "moment fit beats perturbed mean" QCheck.small_int (fun seed ->
      let rng = Rfid_prob.Rng.create ~seed in
      let pts =
        Array.init 200 (fun _ -> [| Rng.gaussian rng (); Rng.gaussian rng () |])
      in
      let g = Gaussian.fit pts in
      let m = Gaussian.mean g in
      let perturbed =
        Gaussian.create ~mean:[| m.(0) +. 0.5; m.(1) -. 0.3 |] ~cov:(Gaussian.cov g)
      in
      Gaussian.avg_nll g pts <= Gaussian.avg_nll perturbed pts +. 1e-9)

let test_confidence_ellipse () =
  (* Isotropic: both semi-axes are sigma * r(level). *)
  let iso = Gaussian.create ~mean:[| 0.; 0. |] ~cov:[| [| 4.; 0. |]; [| 0.; 4. |] |] in
  let a, b, _ = Gaussian.confidence_ellipse_xy iso ~level:0.95 in
  let expected = 2. *. sqrt (-2. *. log 0.05) in
  Util.check_close ~eps:1e-9 "isotropic major" expected a;
  Util.check_close ~eps:1e-9 "isotropic minor" expected b;
  (* Anisotropic diagonal: major axis follows the larger variance. *)
  let aniso = Gaussian.create ~mean:[| 0.; 0. |] ~cov:[| [| 1.; 0. |]; [| 0.; 9. |] |] in
  let a2, b2, angle = Gaussian.confidence_ellipse_xy aniso ~level:0.95 in
  Alcotest.(check bool) "major > minor" true (a2 > b2);
  Util.check_close ~eps:1e-6 "major along y" (Float.pi /. 2.) (Float.abs angle);
  Util.check_close ~eps:1e-6 "axis ratio = sigma ratio" 3. (a2 /. b2);
  (* Coverage level ordering. *)
  let a50, _, _ = Gaussian.confidence_ellipse_xy iso ~level:0.5 in
  Alcotest.(check bool) "95% region larger than 50%" true (a > a50);
  Util.check_raises_invalid "bad level" (fun () ->
      Gaussian.confidence_ellipse_xy iso ~level:1.5);
  let d1 = Gaussian.create ~mean:[| 0. |] ~cov:[| [| 1. |] |] in
  Util.check_raises_invalid "needs 2 dims" (fun () ->
      Gaussian.confidence_ellipse_xy d1 ~level:0.9)

let test_confidence_ellipse_coverage () =
  (* Empirical check: ~95% of samples fall inside the 95% ellipse. *)
  let g =
    Gaussian.create ~mean:[| 1.; -2. |] ~cov:[| [| 2.; 0.7 |]; [| 0.7; 1. |] |]
  in
  let rng = Util.rng () in
  let r2 = -2. *. log 0.05 in
  let inside = ref 0 in
  let n = 20000 in
  for _ = 1 to n do
    let s = Gaussian.sample g rng in
    if Gaussian.mahalanobis_sq g s <= r2 then incr inside
  done;
  Util.check_close ~eps:0.01 "95% coverage" 0.95 (float_of_int !inside /. float_of_int n)

let suite =
  ( "gaussian",
    [
      Alcotest.test_case "univariate pdf" `Quick test_uni_pdf;
      Alcotest.test_case "univariate cdf" `Quick test_uni_cdf;
      Alcotest.test_case "univariate degenerate" `Quick test_uni_degenerate;
      Alcotest.test_case "univariate fit" `Quick test_uni_fit;
      Alcotest.test_case "mv pdf at mean" `Quick test_mv_pdf_at_mean;
      Alcotest.test_case "mv mahalanobis" `Quick test_mv_mahalanobis;
      Alcotest.test_case "mv sample moments" `Quick test_mv_sample_moments;
      Alcotest.test_case "mv fit roundtrip" `Quick test_mv_fit_roundtrip;
      Alcotest.test_case "mv weighted fit" `Quick test_mv_weighted_fit;
      Alcotest.test_case "mv degenerate fit" `Quick test_mv_fit_degenerate;
      Alcotest.test_case "mv shape validation" `Quick test_mv_invalid;
      Alcotest.test_case "avg negative log-likelihood" `Quick test_avg_nll;
      Alcotest.test_case "confidence ellipse" `Quick test_confidence_ellipse;
      Alcotest.test_case "confidence ellipse coverage" `Quick
        test_confidence_ellipse_coverage;
      prop_fit_is_kl_optimal_mean;
    ] )
