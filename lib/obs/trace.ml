(* Buffered chrome-trace sink. Events are pre-rendered to JSON on emit
   (tracing is opt-in, so this allocation never taxes an untraced run)
   and flushed in one write. A mutex guards the buffer: spans normally
   stop on the coordinator domain only, but the contract must hold even
   if a caller times work inside a parallel body. *)

type sink = {
  mutable path : string option;
  buf : Buffer.t;
  mutable count : int;
  mu : Mutex.t;
}

let sink =
  {
    path = (match Sys.getenv_opt "OBS_TRACE" with Some "" -> None | p -> p);
    buf = Buffer.create 256;
    count = 0;
    mu = Mutex.create ();
  }

let enabled () = match sink.path with None -> false | Some _ -> true
let max_events = 1_000_000

let emit ~name ~ts_us ~dur_us =
  match sink.path with
  | None -> ()
  | Some _ ->
      Mutex.lock sink.mu;
      if sink.count < max_events then begin
        if sink.count > 0 then Buffer.add_string sink.buf ",\n";
        Buffer.add_string sink.buf
          (Printf.sprintf
             "{\"name\":%S,\"cat\":\"obs\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
              \"ts\":%.3f,\"dur\":%.3f}"
             name ts_us dur_us)
      end;
      sink.count <- sink.count + 1;
      Mutex.unlock sink.mu

let events () = Int.min sink.count max_events

let write_now () =
  match sink.path with
  | None -> ()
  | Some path ->
      Mutex.lock sink.mu;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock sink.mu)
        (fun () ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc "{\"traceEvents\":[\n";
              Buffer.output_buffer oc sink.buf;
              output_string oc "\n]}\n"))

let set_path p =
  Mutex.lock sink.mu;
  sink.path <- (match p with Some "" -> None | _ -> p);
  Buffer.clear sink.buf;
  sink.count <- 0;
  Mutex.unlock sink.mu

let () = at_exit write_now
