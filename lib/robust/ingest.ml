open Rfid_model
module Obs = Rfid_obs.Metrics

type fault =
  | Nonfinite_fix
  | Out_of_bounds_fix
  | Negative_epoch
  | Duplicate_epoch
  | Out_of_order_epoch
  | Epoch_gap
  | Out_of_range_tag

let all_faults =
  [
    Nonfinite_fix;
    Out_of_bounds_fix;
    Negative_epoch;
    Duplicate_epoch;
    Out_of_order_epoch;
    Epoch_gap;
    Out_of_range_tag;
  ]

let fault_index = function
  | Nonfinite_fix -> 0
  | Out_of_bounds_fix -> 1
  | Negative_epoch -> 2
  | Duplicate_epoch -> 3
  | Out_of_order_epoch -> 4
  | Epoch_gap -> 5
  | Out_of_range_tag -> 6

let fault_name = function
  | Nonfinite_fix -> "nonfinite-fix"
  | Out_of_bounds_fix -> "out-of-bounds-fix"
  | Negative_epoch -> "negative-epoch"
  | Duplicate_epoch -> "duplicate-epoch"
  | Out_of_order_epoch -> "out-of-order-epoch"
  | Epoch_gap -> "epoch-gap"
  | Out_of_range_tag -> "out-of-range-tag"

type policy = Drop | Clamp | Halt

let policy_name = function Drop -> "drop" | Clamp -> "clamp" | Halt -> "halt"

type policies = {
  on_nonfinite_fix : policy;
  on_out_of_bounds_fix : policy;
  on_negative_epoch : policy;
  on_duplicate_epoch : policy;
  on_out_of_order_epoch : policy;
  on_epoch_gap : policy;
  on_out_of_range_tag : policy;
}

let default_policies =
  {
    on_nonfinite_fix = Drop;
    on_out_of_bounds_fix = Clamp;
    on_negative_epoch = Drop;
    on_duplicate_epoch = Drop;
    on_out_of_order_epoch = Halt;
    on_epoch_gap = Clamp;
    on_out_of_range_tag = Clamp;
  }

let uniform_policies p =
  {
    on_nonfinite_fix = p;
    on_out_of_bounds_fix = p;
    on_negative_epoch = p;
    on_duplicate_epoch = p;
    on_out_of_order_epoch = p;
    on_epoch_gap = p;
    on_out_of_range_tag = p;
  }

let policy_for ps = function
  | Nonfinite_fix -> ps.on_nonfinite_fix
  | Out_of_bounds_fix -> ps.on_out_of_bounds_fix
  | Negative_epoch -> ps.on_negative_epoch
  | Duplicate_epoch -> ps.on_duplicate_epoch
  | Out_of_order_epoch -> ps.on_out_of_order_epoch
  | Epoch_gap -> ps.on_epoch_gap
  | Out_of_range_tag -> ps.on_out_of_range_tag

type decision =
  | Accept of Types.observation
  | Degraded of Types.epoch * Types.tag list
  | Rejected
  | Halted of fault * string

type t = {
  policies : policies;
  bounds : Rfid_geom.Box2.t option;
  bounds_margin : float;
  max_object_id : int option;
  max_gap : int;
  counts : int array;
  mutable last_epoch : int;  (* last admitted epoch; -1 initially *)
  mutable last_good_fix : Rfid_geom.Vec3.t option;
}

let create ?(policies = default_policies) ?bounds ?(bounds_margin = 10.)
    ?max_object_id ?(max_gap = 100) () =
  if bounds_margin < 0. then invalid_arg "Ingest.create: negative bounds_margin";
  if max_gap <= 0 then invalid_arg "Ingest.create: max_gap must be positive";
  (match max_object_id with
  | Some n when n < 0 -> invalid_arg "Ingest.create: negative max_object_id"
  | Some _ | None -> ());
  {
    policies;
    bounds;
    bounds_margin;
    max_object_id;
    max_gap;
    counts = Array.make (List.length all_faults) 0;
    last_epoch = -1;
    last_good_fix = None;
  }

let count t fault = t.counts.(fault_index fault)
let counters t = List.map (fun f -> (f, count t f)) all_faults
let total_faults t = Array.fold_left ( + ) 0 t.counts

(* Observability handles: one counter per fault kind (shared across all
   guard instances — the per-instance [counts] array stays the precise
   per-guard view), the stage span over [admit], and one counter per
   admission outcome. *)
let sp_ingest = Obs.span Obs.global "stage.ingest"

let fault_obs =
  Array.of_list
    (List.map
       (fun f -> Obs.counter Obs.global ("ingest.fault." ^ fault_name f))
       all_faults)

let c_admitted = Obs.counter Obs.global "ingest.admitted"
let c_degraded = Obs.counter Obs.global "ingest.degraded"
let c_rejected = Obs.counter Obs.global "ingest.rejected"
let c_halted = Obs.counter Obs.global "ingest.halted"

let note t fault =
  t.counts.(fault_index fault) <- t.counts.(fault_index fault) + 1;
  Obs.incr fault_obs.(fault_index fault) 1

let finite_fix (l : Rfid_geom.Vec3.t) =
  Float.is_finite l.Rfid_geom.Vec3.x
  && Float.is_finite l.Rfid_geom.Vec3.y
  && Float.is_finite l.Rfid_geom.Vec3.z

let halted fault detail =
  Halted
    ( fault,
      Printf.sprintf "Ingest: %s (%s policy is halt)" detail (fault_name fault) )

(* Admission runs the checks in a fixed order — epoch timeline first
   (nothing downstream is meaningful on a bad epoch), then tag ids,
   then the location fix — applying each fault's policy as it trips:
   [Drop] discards the record (or, for fix faults, just the fix —
   yielding a degraded dead-reckoned epoch), [Clamp] repairs in place
   and keeps going, [Halt] stops the stream with an error value rather
   than an exception. *)
let admit_inner t (obs : Types.observation) =
  let apply_epoch_fault fault detail =
    match policy_for t.policies fault with
    | Drop -> Error Rejected
    | Halt -> Error (halted fault detail)
    | Clamp -> Ok (t.last_epoch + 1)
  in
  let e = obs.Types.o_epoch in
  let epoch_result =
    if e < 0 then begin
      note t Negative_epoch;
      apply_epoch_fault Negative_epoch (Printf.sprintf "negative epoch %d" e)
    end
    else if t.last_epoch >= 0 && e = t.last_epoch then begin
      note t Duplicate_epoch;
      apply_epoch_fault Duplicate_epoch (Printf.sprintf "duplicate epoch %d" e)
    end
    else if t.last_epoch >= 0 && e < t.last_epoch then begin
      note t Out_of_order_epoch;
      apply_epoch_fault Out_of_order_epoch
        (Printf.sprintf "epoch %d after epoch %d" e t.last_epoch)
    end
    else if t.last_epoch >= 0 && e > t.last_epoch + t.max_gap then begin
      note t Epoch_gap;
      match policy_for t.policies Epoch_gap with
      | Drop -> Error Rejected
      | Halt ->
          Error
            (halted Epoch_gap
               (Printf.sprintf "gap of %d epochs after epoch %d" (e - t.last_epoch)
                  t.last_epoch))
      | Clamp -> Ok e (* a gap is counted but the record itself is sound *)
    end
    else Ok e
  in
  match epoch_result with
  | Error d -> d
  | Ok e -> (
      let bad_tag = function
        | Types.Object_tag id ->
            id < 0
            || (match t.max_object_id with Some n -> id >= n | None -> false)
        | Types.Shelf_tag id -> id < 0
      in
      let tags_result =
        if List.exists bad_tag obs.Types.o_read_tags then begin
          note t Out_of_range_tag;
          match policy_for t.policies Out_of_range_tag with
          | Drop -> Error Rejected
          | Halt ->
              Error
                (halted Out_of_range_tag
                   (Printf.sprintf "out-of-range tag at epoch %d" e))
          | Clamp -> Ok (List.filter (fun tag -> not (bad_tag tag)) obs.Types.o_read_tags)
        end
        else Ok obs.Types.o_read_tags
      in
      match tags_result with
      | Error d -> d
      | Ok tags -> (
          let degrade () =
            t.last_epoch <- e;
            (* The fix is untrusted but the (validated) tag readings are
               not: pass them along so degraded-mode inference can still
               localize the reader from shelf tags. *)
            Degraded (e, tags)
          in
          let accept loc =
            t.last_epoch <- e;
            t.last_good_fix <- Some loc;
            Accept { Types.o_epoch = e; o_reported_loc = loc; o_read_tags = tags }
          in
          let loc = obs.Types.o_reported_loc in
          if not (finite_fix loc) then begin
            note t Nonfinite_fix;
            match policy_for t.policies Nonfinite_fix with
            | Drop -> degrade ()
            | Halt ->
                halted Nonfinite_fix (Printf.sprintf "non-finite fix at epoch %d" e)
            | Clamp -> (
                (* Repair with the last trusted fix; with none yet seen
                   there is nothing to clamp to, so fall back to dead
                   reckoning. *)
                match t.last_good_fix with
                | Some prev -> accept prev
                | None -> degrade ())
          end
          else
            match t.bounds with
            | Some box
              when not
                     (Rfid_geom.Box2.contains_point
                        (Rfid_geom.Box2.inflate box t.bounds_margin)
                        loc) -> (
                note t Out_of_bounds_fix;
                match policy_for t.policies Out_of_bounds_fix with
                | Drop -> degrade ()
                | Halt ->
                    halted Out_of_bounds_fix
                      (Printf.sprintf "fix outside deployment bounds at epoch %d" e)
                | Clamp ->
                    let clamp v lo hi = Float.max lo (Float.min hi v) in
                    let box = Rfid_geom.Box2.inflate box t.bounds_margin in
                    accept
                      (Rfid_geom.Vec3.make
                         (clamp loc.Rfid_geom.Vec3.x box.Rfid_geom.Box2.min_x
                            box.Rfid_geom.Box2.max_x)
                         (clamp loc.Rfid_geom.Vec3.y box.Rfid_geom.Box2.min_y
                            box.Rfid_geom.Box2.max_y)
                         loc.Rfid_geom.Vec3.z))
            | Some _ | None -> accept loc))

let admit t obs =
  let t0 = Obs.start sp_ingest in
  let decision = admit_inner t obs in
  (match decision with
  | Accept _ -> Obs.incr c_admitted 1
  | Degraded _ -> Obs.incr c_degraded 1
  | Rejected -> Obs.incr c_rejected 1
  | Halted _ -> Obs.incr c_halted 1);
  Obs.stop sp_ingest t0;
  decision

let advance_timeline t epoch =
  if epoch > t.last_epoch then t.last_epoch <- epoch

let step_engine t engine obs =
  match admit t obs with
  | Accept obs -> Ok (Rfid_core.Engine.step engine obs)
  | Degraded (epoch, tags) -> Ok (Rfid_core.Engine.step_degraded engine ~tags ~epoch)
  | Rejected -> Ok []
  | Halted (fault, msg) -> Error (fault, msg)

let run_engine t engine observations =
  let rec go acc = function
    | [] -> Ok (List.concat (List.rev (Rfid_core.Engine.flush engine :: acc)))
    | obs :: rest -> (
        match step_engine t engine obs with
        | Ok events -> go (events :: acc) rest
        | Error _ as e -> e)
  in
  go [] observations

let pp_counters ppf t =
  let nonzero = List.filter (fun (_, n) -> n > 0) (counters t) in
  if nonzero = [] then Format.fprintf ppf "no faults"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
      (fun ppf (f, n) -> Format.fprintf ppf "%s: %d" (fault_name f) n)
      ppf nonzero
