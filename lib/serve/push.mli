(** Push-based metrics export over UDP (RUNBOOK.md §4).

    The server periodically renders {!Rfid_obs.Openmetrics} text and
    fires it at a collector as UDP datagrams. UDP because the export
    must never block or fail the serving loop: a dead or slow collector
    costs dropped telemetry packets (counted here), never ingest
    latency. Payloads are chunked at line boundaries to stay under a
    conservative datagram size; a datagram never splits a metric
    line. *)

type t

val create : host:string -> port:int -> (t, string) result
(** Resolve [host] and open an unconnected UDP socket. [Error] on
    unresolvable hosts or invalid ports — diagnosed once at startup, so
    a typo in [--metrics-push] fails fast instead of silently dropping
    every datagram. *)

val send : t -> string -> unit
(** Chunk the text at line boundaries and send each chunk as one
    datagram. Never raises and never blocks: send failures (e.g.
    ICMP-refused on a closed port) only bump {!send_errors}. *)

val sends : t -> int
(** Datagrams successfully handed to the kernel. *)

val send_errors : t -> int

val close : t -> unit
