(** Planar sensing cones.

    Two uses in the system: the simulator's ground-truth sensing region
    (a 30° major cone plus a 15° minor fringe, §V-A), and the
    sensor-model-based particle initialization of §IV-A ("a uniform
    distribution over a cone originating at the reader location" whose
    width overestimates the true range).

    A cone is a circular sector in the XY plane: apex, heading (radians,
    mathematical convention), half-angle, and radial range. *)

type t = private { apex : Vec3.t; heading : float; half_angle : float; range : float }

val make : apex:Vec3.t -> heading:float -> half_angle:float -> range:float -> t
(** @raise Invalid_argument unless [0 < half_angle <= pi] and
    [range > 0]. *)

val relative_angle : t -> Vec3.t -> float
(** Unsigned angle in [\[0, pi\]] between the cone heading and the
    apex-to-point direction (XY projection). The apex itself maps
    to 0. *)

val contains : t -> Vec3.t -> bool
(** XY distance within range and relative angle within half-angle. *)

val bounding_box : t -> Box2.t
(** Tight axis-aligned box of the sector (accounts for which axis
    extremes of the arc the sector sweeps through). *)

val sample : t -> Rfid_prob.Rng.t -> Vec3.t
(** Area-uniform sample inside the sector, at z = apex.z. *)

val sample_in_box : t -> Box2.t -> Rfid_prob.Rng.t -> Vec3.t option
(** Area-uniform sample from sector ∩ box by rejection (at most 256
    proposals); [None] when the intersection is (nearly) empty. *)
