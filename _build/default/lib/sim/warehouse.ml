open Rfid_geom

type t = {
  world : Rfid_model.World.t;
  object_locs : Vec3.t array;
  aisle_width : float;
  y_extent : float;
}

let layout ?(objects_per_shelf = 10) ?(object_spacing = 0.5) ?(shelf_depth = 1.0)
    ?(aisle_width = 1.5) ~num_objects () =
  if num_objects <= 0 then invalid_arg "Warehouse.layout: num_objects must be positive";
  if objects_per_shelf <= 0 then
    invalid_arg "Warehouse.layout: objects_per_shelf must be positive";
  if object_spacing <= 0. || shelf_depth <= 0. || aisle_width <= 0. then
    invalid_arg "Warehouse.layout: dimensions must be positive";
  let num_shelves = (num_objects + objects_per_shelf - 1) / objects_per_shelf in
  let shelf_len = float_of_int objects_per_shelf *. object_spacing in
  let front_x = aisle_width in
  let back_x = aisle_width +. shelf_depth in
  let shelves =
    List.init num_shelves (fun i ->
        let y0 = float_of_int i *. shelf_len in
        {
          Rfid_model.World.shelf_id = i;
          surface = Box2.make ~min_x:front_x ~min_y:y0 ~max_x:back_x ~max_y:(y0 +. shelf_len);
          height = 0.;
          tag = Some (Vec3.make front_x (y0 +. (shelf_len /. 2.)) 0.);
        })
  in
  let world = Rfid_model.World.create shelves in
  let object_x = front_x +. (shelf_depth /. 2.) in
  let object_locs =
    Array.init num_objects (fun i ->
        Vec3.make object_x ((float_of_int i +. 0.5) *. object_spacing) 0.)
  in
  {
    world;
    object_locs;
    aisle_width;
    y_extent = float_of_int num_shelves *. shelf_len;
  }

let reader_start (_ : t) =
  Rfid_model.Reader_state.make ~loc:(Vec3.make 0. (-1.0) 0.) ~heading:0.
