lib/baselines/uniform.mli: Rfid_core Rfid_model
