open Rfid_geom
open Rfid_model
module Ps = Rfid_prob.Particle_store
module Obs = Rfid_obs.Metrics

(* Observability handles. The stage spans share names with the
   factored filter's — only one filter runs per engine, so the shared
   histograms always describe the active one. The joint filter keeps a
   single weight vector, hence one joint ESS histogram instead of the
   factored per-object/reader split. *)
let sp_pose_memo = Obs.span Obs.global "stage.pose_memo"
let sp_weighting = Obs.span Obs.global "stage.weighting"
let sp_resampling = Obs.span Obs.global "stage.resampling"
let h_joint_ess = Obs.histogram Obs.global "health.joint_ess"
let c_joint_resamples = Obs.counter Obs.global "filter.joint_resamples"
let c_resamples_skipped = Obs.counter Obs.global "filter.resamples_skipped"
let c_saturated = Obs.counter Obs.global "health.saturated_particles"
let c_sensor_evals = Obs.counter Obs.global "health.sensor_evals"
let c_memo_reused = Obs.counter Obs.global "health.pose_memo_reused"

(* Joint particles in structure-of-arrays form: particle [p]'s object
   locations live in row [p] of a single [J * N] slab (slot
   [p * num_objects + i] for object [i]), its reader hypothesis in
   [readers.(p)], and its log weight in [log_ws.(p)]. The per-epoch hot
   loops (proposal, weighting, normalization, resampling) run over
   these slabs and a set of persistent buffers, so the steady state
   allocates nothing per epoch; every loop performs the identical
   floating-point operations in the identical order as the former
   array-of-records code (golden-trace tests hold it there). *)
type t = {
  world : World.t;
  params : Params.t;
  config : Config.t;
  rng : Rfid_prob.Rng.t;
  num_objects : int;
  mutable readers : Reader_state.t array;  (* J reader hypotheses *)
  mutable spare_readers : Reader_state.t array;  (* resample double-buffer *)
  store : Ps.t;  (* J*N object locations, row-major by particle *)
  spare : Ps.t;  (* resample double-buffer for [store] *)
  log_ws : float array;  (* J per-particle log weights *)
  accbuf : float array;  (* J per-epoch weight increments (scratch) *)
  wbuf : float array;  (* J normalized weights (scratch) *)
  idxbuf : int array;  (* J resample indices (scratch) *)
  obj_read : bool array;  (* N per-epoch read flags (scratch) *)
  shelf_read : (int, unit) Hashtbl.t;  (* per-epoch, cleared not rebuilt *)
  pre : Sensor_model.pre;  (* J reader poses, refreshed each epoch *)
  cache : Common.Sensor_cache.t;
  shelf_tags : (Types.tag * Vec3.t) array;
  mutable last_reported : Vec3.t option;
  mutable epoch : int;
  last_read : int array;  (* -1 = never *)
  last_read_reader : Vec3.t array;
  mutable newly_seen : int list;
  mutable consecutive_degraded : int;
  mutable degraded_total : int;
  mutable known_count : int;  (* objects with last_read >= 0 *)
  (* Change feed (see Factored_filter's): the joint weights move every
     epoch, so every estimate may change every epoch — the feed is
     simply "everything changed since the last clear". *)
  mutable changed_all : bool;
}

let slot t p i = (p * t.num_objects) + i

let create ~world ~params ~config ~init_reader ~num_objects ~rng =
  if num_objects < 0 then invalid_arg "Basic_filter.create: negative num_objects";
  let j = config.Config.num_reader_particles in
  let store = Ps.create ~n:(j * num_objects) in
  let readers =
    Array.init j (fun p ->
        let loc =
          Common.jitter init_reader.Reader_state.loc
            ~sigma:params.Params.sensing.Location_sensing.sigma rng
        in
        for i = 0 to num_objects - 1 do
          let l = World.sample_on_shelves world rng in
          Ps.set_loc store ((p * num_objects) + i) ~x:l.Vec3.x ~y:l.Vec3.y ~z:l.Vec3.z
        done;
        Reader_state.make ~loc ~heading:init_reader.Reader_state.heading)
  in
  {
    world;
    params;
    config;
    rng;
    num_objects;
    readers;
    spare_readers = Array.copy readers;
    store;
    spare = Ps.create ~n:(j * num_objects);
    log_ws = Array.make j 0.;
    accbuf = Array.make j 0.;
    wbuf = Array.make j 0.;
    idxbuf = Array.make j 0;
    obj_read = Array.make num_objects false;
    shelf_read = Hashtbl.create 8;
    pre = Sensor_model.precompute params.Params.sensor ~n:j;
    cache =
      Common.Sensor_cache.create ~threshold:config.Config.detection_threshold
        ~max_range:config.Config.max_sensing_range
        params.Params.sensor;
    shelf_tags = Array.of_list (World.shelf_tags world);
    last_reported = None;
    epoch = -1;
    last_read = Array.make num_objects (-1);
    last_read_reader = Array.make num_objects Vec3.zero;
    newly_seen = [];
    consecutive_degraded = 0;
    degraded_total = 0;
    known_count = 0;
    changed_all = false;
  }

let num_particles t = Array.length t.readers

let refresh_memo t =
  let changed = ref false in
  for p = 0 to num_particles t - 1 do
    let r = t.readers.(p) in
    let loc = r.Reader_state.loc in
    if
      Sensor_model.pre_set_pose_checked t.pre p ~x:loc.Vec3.x ~y:loc.Vec3.y
        ~z:loc.Vec3.z ~heading:r.Reader_state.heading
    then changed := true
  done;
  if not !changed then Obs.incr c_memo_reused 1

let reinit_object t p i =
  let r = t.readers.(p) in
  let loc =
    Common.sample_initial_location t.cache
      ~overestimate:t.config.Config.init_overestimate ~world:t.world
      ~reader_loc:r.Reader_state.loc ~heading:r.Reader_state.heading t.rng
  in
  Ps.set_loc t.store (slot t p i) ~x:loc.Vec3.x ~y:loc.Vec3.y ~z:loc.Vec3.z

let step t (obs : Types.observation) =
  if obs.Types.o_epoch <= t.epoch then
    invalid_arg "Basic_filter.step: observations out of epoch order";
  let e = obs.Types.o_epoch in
  let reported = obs.Types.o_reported_loc in
  let j = num_particles t in
  t.newly_seen <- [];
  (* Split readings (into the persistent per-epoch scratch). *)
  Array.fill t.obj_read 0 t.num_objects false;
  Hashtbl.clear t.shelf_read;
  List.iter
    (fun tag ->
      match tag with
      | Types.Object_tag i -> if i >= 0 && i < t.num_objects then t.obj_read.(i) <- true
      | Types.Shelf_tag i -> Hashtbl.replace t.shelf_read i ())
    obs.Types.o_read_tags;
  (* Proposal: move readers and objects. *)
  let t_pose = Obs.start sp_pose_memo in
  let delta =
    Common.proposal_delta t.config.Config.proposal ~motion:t.params.Params.motion
      ~last_reported:t.last_reported ~reported
  in
  let motion = t.params.Params.motion in
  let sigma =
    match t.config.Config.proposal_noise_override with
    | Some s -> s
    | None ->
        Common.proposal_sigma t.config.Config.proposal ~motion
          ~sensing:t.params.Params.sensing
  in
  let move_prob = t.params.Params.objects.Object_model.move_prob in
  for p = 0 to j - 1 do
    let r = t.readers.(p) in
    let loc =
      match t.config.Config.proposal with
      | Config.From_reported_location -> Common.jitter reported ~sigma t.rng
      | Config.From_velocity | Config.From_reported_displacement ->
          Common.jitter (Vec3.add r.Reader_state.loc delta) ~sigma t.rng
    in
    let heading =
      Common.propose_heading t.config.Config.heading_model ~motion ~epoch:e
        ~current:r.Reader_state.heading t.rng
    in
    t.readers.(p) <- Reader_state.make ~loc ~heading;
    (* Move hypotheses only where evidence can judge them — see the
       matching comment in Factored_filter. [Object_model.sample_next]
       is inlined so a particle that stays put writes nothing. *)
    for i = 0 to t.num_objects - 1 do
      if t.obj_read.(i) then
        if Rfid_prob.Rng.bernoulli t.rng ~p:move_prob then begin
          let l = World.sample_on_shelves t.world t.rng in
          Ps.set_loc t.store (slot t p i) ~x:l.Vec3.x ~y:l.Vec3.y ~z:l.Vec3.z
        end
    done
  done;
  (* Detection-driven (re)initialization of object hypotheses. *)
  for i = 0 to t.num_objects - 1 do
    if t.obj_read.(i) then begin
      if t.last_read.(i) < 0 then
        for p = 0 to j - 1 do
          reinit_object t p i
        done
      else begin
        let d = Vec3.dist reported t.last_read_reader.(i) in
        if d >= t.config.Config.reinit_far then
          for p = 0 to j - 1 do
            reinit_object t p i
          done
        else if d >= t.config.Config.reinit_near then
          (* Keep half the hypotheses, spread the other half at the new
             location (§IV-A). *)
          for p = 0 to j - 1 do
            if Rfid_prob.Rng.bool t.rng then reinit_object t p i
          done
      end
    end
  done;
  (* Weighting, against the freshly proposed poses via the memo. *)
  refresh_memo t;
  Obs.stop sp_pose_memo t_pose;
  let t_weight = Obs.start sp_weighting in
  (* Batched: one cross-module call per evidence source against every
     particle, instead of one per (particle, source) — the same terms
     accumulate into [accbuf.(p)] in the same order the former
     per-particle [lw] ref summed them (location, shelf tags in array
     order, then objects ascending), so each increment is
     bit-identical. *)
  let acc = t.accbuf in
  let rx, ry, rz, _ = Sensor_model.pre_poses t.pre in
  Location_sensing.log_pdf_poses_into t.params.Params.sensing ~reported ~rx ~ry ~rz
    ~n:j acc;
  let culled = ref 0 in
  Array.iter
    (fun (tag, tag_loc) ->
      let read =
        match tag with Types.Shelf_tag i -> Hashtbl.mem t.shelf_read i | _ -> false
      in
      culled :=
        !culled
        + Sensor_model.pre_accumulate_tag t.pre ~tx:tag_loc.Vec3.x ~ty:tag_loc.Vec3.y
            ~tz:tag_loc.Vec3.z ~read ~miss_weight:t.config.Config.shelf_miss_weight acc)
    t.shelf_tags;
  for i = 0 to t.num_objects - 1 do
    (* Objects never read are still latent but carry no evidence
       coupling beyond the miss term; include it — this is the full
       joint model. *)
    culled :=
      !culled
      + Sensor_model.pre_accumulate_joint_obj t.pre t.store ~obj:i
          ~num_objects:t.num_objects ~read:t.obj_read.(i) acc
  done;
  for p = 0 to j - 1 do
    t.log_ws.(p) <- t.log_ws.(p) +. acc.(p)
  done;
  Sensor_model.pre_note_hits t.pre (j * (Array.length t.shelf_tags + t.num_objects));
  if !culled > 0 then Obs.incr c_saturated !culled;
  Obs.incr c_sensor_evals ((j * (Array.length t.shelf_tags + t.num_objects)) - !culled);
  Obs.stop sp_weighting t_weight;
  (* Normalize in log space, resample on degeneracy. All buffers are
     persistent: [log_ws] is the log-weight vector itself, [wbuf] its
     normalized image, [idxbuf] the resample indices. *)
  let t_res = Obs.start sp_resampling in
  Rfid_prob.Stats.normalize_log_weights_into ~src:t.log_ws ~dst:t.wbuf;
  let ess = Rfid_prob.Stats.effective_sample_size t.wbuf in
  Obs.observe h_joint_ess ess;
  let jf = float_of_int j in
  let degenerate = ess < t.config.Config.resample_ratio *. jf in
  let vetoed =
    (* The same ESS cap the factored filter applies: when the classic
       gate fires but ESS still clears [resample_ess_ratio * j], the
       joint resample is skipped and the weights carry over (vacuous at
       the default cap of 1.0). *)
    degenerate && ess >= t.config.Config.resample_ess_ratio *. jf
  in
  if vetoed then Obs.incr c_resamples_skipped 1;
  if degenerate && not vetoed then begin
    Obs.incr c_joint_resamples 1;
    Common.resample_into t.config.Config.resample_scheme t.rng t.wbuf ~n:j
      ~out:t.idxbuf;
    for p = 0 to j - 1 do
      t.spare_readers.(p) <- t.readers.(t.idxbuf.(p))
    done;
    let tmp = t.readers in
    t.readers <- t.spare_readers;
    t.spare_readers <- tmp;
    for p = 0 to j - 1 do
      Ps.blit ~src:t.store ~src_pos:(t.idxbuf.(p) * t.num_objects) ~dst:t.spare
        ~dst_pos:(p * t.num_objects) ~len:t.num_objects
    done;
    Ps.swap t.store t.spare;
    Array.fill t.log_ws 0 j 0.
  end
  else begin
    (* Keep weights centred to avoid underflow. The former code
       recomputed [log_sum_exp] per particle over the same snapshot —
       one evaluation, reused, is the identical value. *)
    let z = Rfid_prob.Stats.log_sum_exp t.log_ws in
    for p = 0 to j - 1 do
      t.log_ws.(p) <- t.log_ws.(p) -. z
    done
  end;
  Obs.stop sp_resampling t_res;
  (* Bookkeeping for scope tracking. *)
  for i = 0 to t.num_objects - 1 do
    if t.obj_read.(i) then begin
      if t.last_read.(i) < 0 then t.known_count <- t.known_count + 1;
      if t.last_read.(i) < 0 || e - t.last_read.(i) > t.config.Config.out_of_scope_after
      then t.newly_seen <- i :: t.newly_seen;
      t.last_read.(i) <- e;
      t.last_read_reader.(i) <- reported
    end
  done;
  t.last_reported <- Some reported;
  t.consecutive_degraded <- 0;
  t.changed_all <- true;
  t.epoch <- e

(* Degraded epoch: no usable location fix. The reader belief advances
   by the motion model alone with inflated proposal noise (dead
   reckoning). Shelf tags read during the outage still carry evidence —
   their positions are known exactly — so [shelf_tags] re-weights the
   reader hypotheses against them; with none (the default) weights are
   untouched. Once the outage outlasts [degraded_widen_after], object
   hypotheses start diffusing too: the filter's knowledge of where
   things are genuinely decays. *)
let dead_reckon ?(shelf_tags = []) t ~epoch:e =
  if e <= t.epoch then
    invalid_arg "Basic_filter.dead_reckon: observations out of epoch order";
  t.newly_seen <- [];
  let motion = t.params.Params.motion in
  let scale = t.config.Config.degraded_noise_scale in
  let s = motion.Motion_model.sigma in
  let sigma = Vec3.make (s.Vec3.x *. scale) (s.Vec3.y *. scale) (s.Vec3.z *. scale) in
  t.consecutive_degraded <- t.consecutive_degraded + 1;
  t.degraded_total <- t.degraded_total + 1;
  let widen =
    t.consecutive_degraded >= t.config.Config.degraded_widen_after
    && t.config.Config.degraded_widen_sigma > 0.
  in
  let wsigma =
    let w = t.config.Config.degraded_widen_sigma in
    Vec3.make w w 0.
  in
  for p = 0 to num_particles t - 1 do
    let r = t.readers.(p) in
    let loc =
      Common.jitter (Vec3.add r.Reader_state.loc motion.Motion_model.velocity) ~sigma
        t.rng
    in
    let heading =
      Common.propose_heading t.config.Config.heading_model ~motion ~epoch:e
        ~current:r.Reader_state.heading t.rng
    in
    t.readers.(p) <- Reader_state.make ~loc ~heading;
    if widen then
      for i = 0 to t.num_objects - 1 do
        if t.last_read.(i) >= 0 then begin
          let s = slot t p i in
          let cur = Vec3.make (Ps.x t.store s) (Ps.y t.store s) (Ps.z t.store s) in
          let l = Common.jitter cur ~sigma:wsigma t.rng in
          let l =
            if World.contains t.world l then l else World.clamp_to_shelves t.world l
          in
          Ps.set_loc t.store s ~x:l.Vec3.x ~y:l.Vec3.y ~z:l.Vec3.z
        end
      done
  done;
  (* Reader localization from shelf tags read this epoch: accumulate
     their (read-only, never culled) sensor terms against the freshly
     dead-reckoned poses and fold into the joint weights. Ids arrive
     deduplicated and ascending from the engine. *)
  if shelf_tags <> [] then begin
    refresh_memo t;
    let j = num_particles t in
    let acc = t.accbuf in
    Array.fill acc 0 j 0.;
    let calls = ref 0 in
    List.iter
      (fun id ->
        match World.shelf_tag_location t.world id with
        | tag_loc ->
            calls := !calls + j;
            ignore
              (Sensor_model.pre_accumulate_tag t.pre ~tx:tag_loc.Vec3.x
                 ~ty:tag_loc.Vec3.y ~tz:tag_loc.Vec3.z ~read:true
                 ~miss_weight:t.config.Config.shelf_miss_weight acc)
        | exception Not_found -> ())
      shelf_tags;
    for p = 0 to j - 1 do
      t.log_ws.(p) <- t.log_ws.(p) +. acc.(p)
    done;
    Sensor_model.pre_note_hits t.pre !calls;
    Obs.incr c_sensor_evals !calls;
    (* Keep weights centred, as the evidence path does. *)
    let z = Rfid_prob.Stats.log_sum_exp t.log_ws in
    if Float.is_finite z then
      for p = 0 to j - 1 do
        t.log_ws.(p) <- t.log_ws.(p) -. z
      done
  end;
  t.changed_all <- true;
  t.epoch <- e

let degraded_epochs t = t.degraded_total
let consecutive_degraded t = t.consecutive_degraded

(* Checkpointable state: everything [step]/[dead_reckon] read or write,
   as plain data. Static structure (world, params, config, sensor
   cache) is reconstructed by [restore] from the same creation inputs.
   The slab is serialized to the same logical (reader, locations,
   log weight) rows as before the SoA layout, so snapshots stay
   layout-independent. *)
type snapshot = {
  s_rng : int64;
  s_num_objects : int;
  s_particles : (Reader_state.t * Vec3.t array * float) array;
  s_last_reported : Vec3.t option;
  s_epoch : int;
  s_last_read : int array;
  s_last_read_reader : Vec3.t array;
  s_newly_seen : int list;
  s_consecutive_degraded : int;
  s_degraded_total : int;
}

let snapshot t =
  {
    s_rng = Rfid_prob.Rng.state t.rng;
    s_num_objects = t.num_objects;
    s_particles =
      Array.init (num_particles t) (fun p ->
          ( t.readers.(p),
            Array.init t.num_objects (fun i ->
                let s = slot t p i in
                Vec3.make (Ps.x t.store s) (Ps.y t.store s) (Ps.z t.store s)),
            t.log_ws.(p) ));
    s_last_reported = t.last_reported;
    s_epoch = t.epoch;
    s_last_read = Array.copy t.last_read;
    s_last_read_reader = Array.copy t.last_read_reader;
    s_newly_seen = t.newly_seen;
    s_consecutive_degraded = t.consecutive_degraded;
    s_degraded_total = t.degraded_total;
  }

let snapshot_epoch s = s.s_epoch

let restore ~world ~params ~config s =
  let j = Array.length s.s_particles in
  let n = s.s_num_objects in
  let store = Ps.create ~n:(j * n) in
  let log_ws = Array.make j 0. in
  let readers =
    Array.init j (fun p ->
        let reader, locs, log_w = s.s_particles.(p) in
        Array.iteri
          (fun i (l : Vec3.t) ->
            Ps.set_loc store ((p * n) + i) ~x:l.Vec3.x ~y:l.Vec3.y ~z:l.Vec3.z)
          locs;
        log_ws.(p) <- log_w;
        reader)
  in
  {
    world;
    params;
    config;
    rng = Rfid_prob.Rng.of_state s.s_rng;
    num_objects = n;
    readers;
    spare_readers = Array.copy readers;
    store;
    spare = Ps.create ~n:(j * n);
    log_ws;
    accbuf = Array.make j 0.;
    wbuf = Array.make j 0.;
    idxbuf = Array.make j 0;
    obj_read = Array.make n false;
    shelf_read = Hashtbl.create 8;
    pre = Sensor_model.precompute params.Params.sensor ~n:j;
    cache =
      Common.Sensor_cache.create ~threshold:config.Config.detection_threshold
        ~max_range:config.Config.max_sensing_range
        params.Params.sensor;
    shelf_tags = Array.of_list (World.shelf_tags world);
    last_reported = s.s_last_reported;
    epoch = s.s_epoch;
    last_read = Array.copy s.s_last_read;
    last_read_reader = Array.copy s.s_last_read_reader;
    newly_seen = s.s_newly_seen;
    consecutive_degraded = s.s_consecutive_degraded;
    degraded_total = s.s_degraded_total;
    known_count =
      Array.fold_left (fun acc r -> if r >= 0 then acc + 1 else acc) 0 s.s_last_read;
    changed_all = true;
  }

let weights t = Rfid_prob.Stats.normalize_log_weights t.log_ws

let estimate t obj =
  if obj < 0 || obj >= t.num_objects || t.last_read.(obj) < 0 then None
  else begin
    let w = weights t in
    let pts =
      Array.init (num_particles t) (fun p ->
          let s = slot t p obj in
          [| Ps.x t.store s; Ps.y t.store s; Ps.z t.store s |])
    in
    let g = Rfid_prob.Gaussian.fit ~w pts in
    Some (Vec3.of_array (Rfid_prob.Gaussian.mean g), Rfid_prob.Gaussian.cov g)
  end

let reader_estimate t =
  let w = weights t in
  let acc = ref Vec3.zero in
  Array.iteri
    (fun p r -> acc := Vec3.add !acc (Vec3.scale w.(p) r.Reader_state.loc))
    t.readers;
  !acc

let sensor_memo_hits t = Sensor_model.pre_hits t.pre
let sensor_memo_size t = Sensor_model.pre_size t.pre

let newly_seen t = t.newly_seen

let known_objects t =
  let out = ref [] in
  for i = t.num_objects - 1 downto 0 do
    if t.last_read.(i) >= 0 then out := i :: !out
  done;
  !out

let iter_known t f =
  for i = 0 to t.num_objects - 1 do
    if t.last_read.(i) >= 0 then f i
  done

let num_known t = t.known_count
let changes_dirty_all t = t.changed_all
let iter_dirty _ _ = ()
let clear_changes t = t.changed_all <- false

let epoch t = t.epoch
