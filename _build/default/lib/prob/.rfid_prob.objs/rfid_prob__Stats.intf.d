lib/prob/stats.mli:
