type t = {
  sensor : Sensor_model.t;
  motion : Motion_model.t;
  sensing : Location_sensing.t;
  objects : Object_model.t;
}

let create ?(sensor = Sensor_model.default) ?(motion = Motion_model.default)
    ?(sensing = Location_sensing.default) ?(objects = Object_model.default) () =
  { sensor; motion; sensing; objects }

let default = create ()

let pp ppf t =
  Format.fprintf ppf
    "@[<v>sensor: %a@ motion: v=%a sigma=%a@ sensing: bias=%a sigma=%a@ objects: \
     alpha=%.2e@]"
    Sensor_model.pp t.sensor Rfid_geom.Vec3.pp t.motion.Motion_model.velocity
    Rfid_geom.Vec3.pp t.motion.Motion_model.sigma Rfid_geom.Vec3.pp
    t.sensing.Location_sensing.bias Rfid_geom.Vec3.pp t.sensing.Location_sensing.sigma
    t.objects.Object_model.move_prob
