examples/calibration.ml: Array Float Format Int Params Printf Rfid_learn Rfid_model Rfid_prob Rfid_sim Sensor_model Trace Unix
