examples/quickstart.mli:
