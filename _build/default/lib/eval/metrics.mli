(** Accuracy metrics: the paper's "inference error" — the average
    distance between reported object locations and true object locations
    (§V-A), split by axis as in Fig. 6(b). *)

type error = {
  mean_x : float;  (** mean |x - x_true| over events, ft *)
  mean_y : float;  (** mean |y - y_true| *)
  mean_xy : float;  (** mean XY-plane Euclidean distance *)
  count : int;  (** events scored *)
}

val zero : error

val inference_error : Rfid_core.Event.t list -> Rfid_model.Trace.t -> error
(** Score each event against the true location of its object at the
    event's epoch (clamped to the trace's last epoch for events emitted
    by an end-of-stream flush). Events for object ids outside the trace
    are ignored. *)

val per_object_error :
  Rfid_core.Event.t list -> Rfid_model.Trace.t -> (int * float) list
(** XY error of each object's {e last} event, by object id (the
    location-update query keeps only the most recent report per tag). *)

val coverage : Rfid_core.Event.t list -> Rfid_model.Trace.t -> float
(** Fraction of the trace's objects that received at least one event. *)

val pp_error : Format.formatter -> error -> unit
