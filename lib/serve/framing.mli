(** Wire framing for the stream server (PROTOCOL.md §2).

    The protocol is line-framed: one request or reply line per [\n],
    with an optional preceding [\r] tolerated (and stripped) on input.
    A {!buffer} reassembles complete lines from the arbitrary byte
    chunks a socket delivers; a line longer than {!max_line_bytes} is
    reported as an {!event} of its own ([`Overflow]) and its bytes are
    discarded through the terminating newline, so one hostile client
    line cannot grow server memory without bound or desynchronize the
    stream.

    The module also owns the float formatting of every reply
    ({!float_str}): shortest decimal form that round-trips the IEEE-754
    double exactly. Queries answer from live posteriors, and the
    serve-smoke gate diffs those answers byte-for-byte against an
    offline replay — a lossy printf would hide real divergence. *)

val max_line_bytes : int
(** Hard cap on one frame, terminator excluded (64 KiB). *)

type buffer
(** Reassembly state for one connection. *)

val create_buffer : unit -> buffer

type event =
  | Line of string  (** one complete frame, [\r\n]/[\n] stripped *)
  | Overflow  (** a frame exceeded {!max_line_bytes} and was discarded *)

val feed : buffer -> string -> event list
(** Append a received chunk and return the events it completes, in wire
    order. Bytes of a not-yet-terminated line stay buffered for the
    next call. *)

val pending_bytes : buffer -> int
(** Bytes currently buffered awaiting a terminator. *)

val float_str : float -> string
(** Shortest [%.15g]/[%.16g]/[%.17g] form whose [float_of_string]
    round-trips the value bit-for-bit. Non-finite values print as
    [nan]/[inf]/[-inf]. *)
