(* Self-calibration demo (§III-C): learn the sensor model, reader
   motion and location-sensing parameters from a short training trace
   with a handful of known-location tags, starting from an
   uninformative model. Prints the true and learned read-rate fields.

   Run with:  dune exec examples/calibration.exe *)

open Rfid_model

let heatmap title read_prob =
  Printf.printf "\n%s\n" title;
  let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |] in
  for r = 0 to 14 do
    let y = 1.8 -. (float_of_int r /. 14. *. 3.6) in
    print_string "  |";
    for c = 0 to 47 do
      let x = float_of_int c /. 47. *. 4. in
      let d = sqrt ((x *. x) +. (y *. y)) in
      let theta = if x = 0. && y = 0. then 0. else Float.abs (atan2 y x) in
      let p = read_prob ~d ~theta in
      print_char shades.(Int.min 9 (int_of_float (p *. 10.)))
    done;
    print_endline "|"
  done

let () =
  (* The deployment's actual sensing region: a cone the engine has never
     seen. *)
  let truth = Rfid_sim.Truth_sensor.cone ~rr_major:0.95 () in
  heatmap "true sensing region (simulator ground truth):"
    truth.Rfid_sim.Truth_sensor.read_prob;

  (* A training trace: 20 tags on shelves, 4 with known locations. *)
  let wh = Rfid_sim.Warehouse.layout ~objects_per_shelf:5 ~num_objects:20 () in
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds:1)
      ~config:(Rfid_sim.Trace_gen.default_config ~sensor:truth ())
      (Rfid_prob.Rng.create ~seed:21)
  in

  (* EM from an uninformative start: a sensor that answers 50/50
     everywhere. *)
  let blind = Sensor_model.of_coef [| 0.; 0.; 0.; 0.; 0. |] in
  let t0 = Unix.gettimeofday () in
  let learned =
    Rfid_learn.Calibration.calibrate ~world:wh.Rfid_sim.Warehouse.world
      ~init:(Params.create ~sensor:blind ())
      ~config:
        { (Rfid_learn.Calibration.default_config ()) with
          Rfid_learn.Calibration.em_iters = 8 }
      ~observations:(Trace.observations trace)
      ~init_reader:trace.Trace.steps.(0).Trace.true_reader
  in
  Printf.printf "\nEM calibration took %.1f s\n" (Unix.gettimeofday () -. t0);
  Format.printf "learned parameters:@.  %a@." Params.pp learned;

  heatmap "learned sensing region:" (fun ~d ~theta ->
      Sensor_model.read_prob_at learned.Params.sensor ~d ~theta);
  Printf.printf "\nmean |true - learned| read-rate gap: %.4f\n"
    (Rfid_learn.Supervised.mean_abs_error learned.Params.sensor
       ~read_prob:truth.Rfid_sim.Truth_sensor.read_prob ())
