test/test_logistic.ml: Alcotest Array Float Gen Linalg Logistic Printf QCheck Rfid_prob Rng Util
