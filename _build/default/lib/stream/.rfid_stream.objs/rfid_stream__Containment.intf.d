lib/stream/containment.mli: Format Rfid_core Rfid_geom
