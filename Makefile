# Standard entry points so every PR runs the same way.

DUNE ?= dune

.PHONY: all build test bench bench-json fuzz fmt clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) build && $(DUNE) runtest && $(DUNE) exec fuzz/fuzz_main.exe -- 10

# Randomized corrupted-input fuzz (seeds are logged; reproduce any
# failure with `dune exec fuzz/fuzz_main.exe -- ITERS BASE_SEED`).
fuzz:
	$(DUNE) exec fuzz/fuzz_main.exe

# Full table/figure reproduction harness (slow).
bench:
	$(DUNE) exec bench/main.exe

# Machine-readable throughput bench; BENCH_filter.json is committed so
# the perf trajectory is diffable across PRs.
bench-json:
	$(DUNE) exec bench/main.exe -- --json BENCH_filter.json

fmt:
	$(DUNE) build @fmt --auto-promote 2>/dev/null || true

clean:
	$(DUNE) clean
