(** Structure-of-arrays particle storage.

    A store holds [n] particles as parallel unboxed slabs — [floatarray]
    columns for x/y/z and log weight plus a flat [int array] of reader
    indices — instead of an array of boxed records. The filter hot
    paths (weighting, normalization, resampling) run over these slabs
    with zero steady-state allocation: stores are created once per
    object (or filter), then {!resize}d, {!gather}ed and {!swap}ped in
    place.

    Every routine that replaces an array-of-records loop from the
    filters performs bit-identical floating-point arithmetic in the
    identical order, so adopting the store changes the allocation
    profile of a filter and nothing about its output. *)

type t

val create : n:int -> t
(** Store of [n] particles, all fields zero. [n = 0] is legal (the
    placeholder belief of a just-discovered object).
    @raise Invalid_argument on negative [n]. *)

val length : t -> int
(** Live particle count [n]. *)

val capacity : t -> int
(** Allocated slab length ([>= length]); grows geometrically, never
    shrinks. *)

val resize : t -> int -> unit
(** Set the live count, reallocating slabs only when the capacity is
    exceeded. Slab contents are unspecified after a growing resize —
    callers fill [0, n) before reading. *)

val resize_down : t -> int -> unit
(** Truncate the live count to [n <= length], keeping the slabs. The
    survivors are the {e prefix}: after a systematic resample the
    ancestor indices are in CDF order, so a prefix is a biased
    subsample — posterior-shrinking callers should resample directly to
    the target count instead and use this only where particle order
    carries no meaning.
    @raise Invalid_argument if [n] is outside [[0, length]]. *)

val resize_up :
  t ->
  n:int ->
  rng:Rng.t ->
  sigma_x:float ->
  sigma_y:float ->
  sigma_z:float ->
  unit
(** Grow the live count from [k = length] to [n]: new particle [k + i]
    is a copy of particle [i mod k] (cyclic replication, log weight and
    reader pointer included) jittered per axis by [sigma_* * gaussian].
    Exactly three deviates are drawn per new particle (x, y, z order)
    from [rng], so the result is a pure function of the generator state
    — the filters pass per-(object, epoch) keyed substreams, keeping
    growth independent of placement and domain count.
    @raise Invalid_argument on an empty store or [n < length]. *)

val swap : t -> t -> unit
(** Exchange the entire contents (counts and slabs) of two stores in
    O(1) — the second half of a resample {!gather} into a scratch
    slab. *)

(** {1 Element access}

    All checked accessors validate the index against [length].
    @raise Invalid_argument on an index outside [0, length). *)

val x : t -> int -> float
(** X coordinate of particle [i]. *)

val y : t -> int -> float
(** Y coordinate of particle [i]. *)

val z : t -> int -> float
(** Z coordinate of particle [i]. *)

val log_w : t -> int -> float
(** Unnormalized log weight of particle [i]. *)

val reader : t -> int -> int
(** Reader-particle pointer of particle [i] — the index of the reader
    hypothesis this object particle is conditioned on (section IV-B's
    factorization). *)

val set_loc : t -> int -> x:float -> y:float -> z:float -> unit
(** Overwrite the location of particle [i] (all three coordinates in
    one call — one bounds check, no intermediate vector). *)

val set_log_w : t -> int -> float -> unit
(** Overwrite the log weight of particle [i]. *)

val add_log_w : t -> int -> float -> unit
(** Accumulate evidence onto the log weight of particle [i]. *)

val set_reader : t -> int -> int -> unit
(** Re-point particle [i] at another reader hypothesis. *)

val unsafe_x : t -> int -> float
(** Unchecked accessors for inner loops whose bounds were already
    validated; indexing past [length] is undefined behaviour. *)

val unsafe_y : t -> int -> float
(** As {!unsafe_x} for the Y column. *)

val unsafe_z : t -> int -> float
(** As {!unsafe_x} for the Z column. *)

val unsafe_reader : t -> int -> int
(** As {!unsafe_x} for the reader-pointer column. *)

(** {1 Weight operations (in place)} *)

val max_log_w : t -> float
(** Running [Float.max] over the log weights; [neg_infinity] when
    empty. *)

val shift_log_w : t -> float -> unit
(** Subtract a constant from every log weight (centring). *)

val reset_log_w : t -> unit
(** Zero every log weight (post-resample reset). *)

val weights_into : t -> float array -> unit
(** Write the normalized linear weights of the current log weights into
    a caller buffer of length exactly [length t] — the zero-allocation
    replacement for materializing a log-weight array and normalizing a
    copy. @raise Invalid_argument on length mismatch. *)

val normalized_weights : t -> float array
(** Allocating variant of {!weights_into} for cold paths. *)

(** {1 Resampling and moments} *)

val gather : src:t -> dst:t -> int array -> n:int -> unit
(** [gather ~src ~dst idx ~n] resizes [dst] to [n] and sets
    [dst.(i) <- src.(idx.(i))] with log weight 0 — rebuilding a
    particle set from resampled source indices without allocating.
    @raise Invalid_argument if [src == dst], the index buffer is
    shorter than [n], or an index is out of range. *)

val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
(** Copy a contiguous range of particles (every column) between stores
    — row-wise resampling for callers that pack a matrix of particles
    into one slab. Overlapping self-blit behaves like [Array.blit].
    @raise Invalid_argument if either range exceeds its store's
    length. *)

val backing : t -> floatarray * floatarray * floatarray * floatarray * int array
(** The live slabs (xs, ys, zs, log weights, reader indices), for
    batched consumers that loop over the whole store in one call —
    avoiding a boxing call per particle. Indices [< length t] are
    valid; {!resize} and {!swap} invalidate the returned arrays. *)

val fit_gaussian : w:float array -> t -> Gaussian.t
(** Moment-matched 3-D Gaussian of the weighted cloud, bit-identical to
    fitting over per-particle [[|x; y; z|]] rows.
    @raise Invalid_argument on an empty store or weight length
    mismatch. *)

val avg_nll : w:float array -> Gaussian.t -> t -> float
(** Weighted average negative log-likelihood of the particles under a
    Gaussian (the compression acceptance test), with a reused probe
    buffer. @raise Invalid_argument on an empty store. *)

val copy : t -> t
(** Deep copy trimmed to [length]. *)
