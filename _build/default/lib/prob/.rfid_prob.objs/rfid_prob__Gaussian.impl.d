lib/prob/gaussian.ml: Array Float Linalg Rng Stats
