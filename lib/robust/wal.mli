(** Write-ahead log of admitted epochs.

    Checkpoints alone lose the epochs since the last save; the WAL
    closes that window. {!Rfid_core.Engine} journals every admitted
    epoch — the post-guard observation for a normal step, the epoch and
    surviving tags for a degraded one — and a {!writer} appends each as
    a checksummed record {e before} the engine's state changes.
    Recovery is then: load the newest valid checkpoint, {!read} the
    log, and {!replay} the entries past the checkpoint's epoch through
    a fresh ingest guard — reproducing the pre-crash event stream
    bit-identically, because replayed inputs equal original inputs and
    the filters are deterministic given their (checkpointed) RNG state.

    Record framing: [magic "RWL1", u32 body length, body, u32 Adler-32
    of the body], bodies encoded with {!Codec.Prim}. A crash can tear
    at most the final record; {!read} stops cleanly at the first
    invalid byte and reports how much tail it discarded, and
    {!truncate} chops the torn tail so the file can be appended to
    again. Appends are batched: {!append} calls [fsync] every
    [fsync_every] records (and {!sync}/{!close} always do), trading a
    bounded number of lost-but-replayable epochs for not paying a disk
    round-trip per epoch. *)

type entry =
  | Step of Rfid_model.Types.observation
      (** an epoch admitted with a usable (possibly repaired) fix *)
  | Degraded of Rfid_model.Types.epoch * Rfid_model.Types.tag list
      (** an epoch whose fix was rejected; the validated tag readings
          that survived ride along *)

val entry_epoch : entry -> Rfid_model.Types.epoch

(** {1 Writing} *)

type writer

val create_writer :
  ?append:bool -> ?fsync_every:int -> path:string -> unit -> writer
(** Open [path] for logging. [append] false (the default) truncates —
    a fresh run starts a fresh log; recovery reopens with [append]
    true after {!truncate}-ing the torn tail. [fsync_every] (default 8,
    min 1) is the record count between forced syncs.
    @raise Sys_error if the file cannot be opened. *)

val append : writer -> entry -> unit
(** Append one record (through the durable-write layer, so the
    crash-test hook can tear it mid-record). Latency lands in the
    [stage.wal_append] span. *)

val sync : writer -> unit
(** Force an [fsync] now regardless of the batch counter. *)

val close : writer -> unit
(** {!sync} then close the descriptor. Idempotent. *)

(** {1 Reading and recovery} *)

type tail = {
  entries : entry list;  (** every complete, checksum-valid record *)
  valid_bytes : int;  (** file prefix length those records occupy *)
  discarded_bytes : int;  (** torn/corrupt tail length, 0 if clean *)
  note : string option;  (** why reading stopped early, if it did *)
}

val read : path:string -> tail
(** Scan the log from the start, collecting records until the file
    ends or a record fails its length, magic, or checksum test. Never
    raises on bad content — a missing file is an empty tail, and any
    malformed suffix is simply reported as discarded. *)

val truncate : path:string -> valid_bytes:int -> unit
(** Chop the file to its valid prefix (no-op if already that size), so
    a recovered process can append new records after a torn tail.
    @raise Sys_error on I/O failure. *)

val replay :
  guard:Ingest.t ->
  engine:Rfid_core.Engine.t ->
  entry list ->
  (Rfid_core.Event.t list, string) result
(** Feed entries to the engine exactly as live ingest would: [Step]
    observations go through {!Ingest.step_engine} (re-validated — the
    guard is fresh after recovery), [Degraded] entries advance the
    guard's timeline and call {!Rfid_core.Engine.step_degraded}
    directly (their fix was already rejected once; there is nothing to
    re-validate). Entries at or before the engine's current epoch are
    skipped, so replaying a log that overlaps the checkpoint is safe.
    [Error] if a replayed entry halts the guard — possible only if the
    log was forged, since logged entries passed the guard once. *)
