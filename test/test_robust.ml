(* Tests of the robustness layer: the ingest guard's per-fault
   policies, fault injection, and degraded-mode inference. *)
open Rfid_model
open Rfid_robust

let obs e loc tags = { Types.o_epoch = e; o_reported_loc = loc; o_read_tags = tags }
let v = Util.vec3
let nan3 = Util.vec3 Float.nan 0. 0.

let small_scenario =
  lazy
    (let wh = Rfid_sim.Warehouse.layout ~num_objects:4 () in
     let trace =
       Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
         ~object_locs:wh.Rfid_sim.Warehouse.object_locs
         ~start:(Rfid_sim.Warehouse.reader_start wh)
         ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds:1)
         ~config:(Rfid_sim.Trace_gen.default_config ())
         (Rfid_prob.Rng.create ~seed:41)
     in
     (wh, trace))

let small_engine ?(variant = Rfid_core.Config.Factorized_indexed) ?(seed = 11) () =
  let wh, trace = Lazy.force small_scenario in
  let engine =
    Rfid_core.Engine.create ~world:wh.Rfid_sim.Warehouse.world ~params:Params.default
      ~config:
        (Rfid_core.Config.create ~variant ~num_reader_particles:30
           ~num_object_particles:40 ())
      ~init_reader:trace.Trace.steps.(0).Trace.true_reader ~num_objects:4 ~seed ()
  in
  (wh, trace, engine)

(* ------------------------------------------------------------------ *)
(* Ingest guard decisions                                              *)

let check_decision what expected actual =
  let show = function
    | Ingest.Accept o -> Printf.sprintf "Accept@%d" o.Types.o_epoch
    | Ingest.Degraded (e, tags) ->
        Printf.sprintf "Degraded@%d/%d" e (List.length tags)
    | Ingest.Rejected -> "Rejected"
    | Ingest.Halted (f, _) -> "Halted:" ^ Ingest.fault_name f
  in
  Alcotest.(check string) what (show expected) (show actual)

let test_guard_clean_passthrough () =
  let g = Ingest.create () in
  let o = obs 0 (v 1. 2. 0.) [ Types.Object_tag 1 ] in
  check_decision "clean accepted" (Ingest.Accept o) (Ingest.admit g o);
  let o1 = obs 1 (v 1. 2.1 0.) [] in
  check_decision "next accepted" (Ingest.Accept o1) (Ingest.admit g o1);
  Alcotest.(check int) "no faults" 0 (Ingest.total_faults g)

let test_guard_epoch_faults () =
  (* Default policies: duplicates and negative epochs are dropped,
     out-of-order halts. *)
  let g = Ingest.create () in
  ignore (Ingest.admit g (obs 5 (v 0. 0. 0.) []));
  check_decision "duplicate rejected" Ingest.Rejected
    (Ingest.admit g (obs 5 (v 0. 0. 0.) []));
  check_decision "negative rejected" Ingest.Rejected
    (Ingest.admit g (obs (-1) (v 0. 0. 0.) []));
  (match Ingest.admit g (obs 3 (v 0. 0. 0.) []) with
  | Ingest.Halted (Ingest.Out_of_order_epoch, msg) ->
      Alcotest.(check bool) "message mentions epochs" true
        (String.length msg > 0)
  | d ->
      check_decision "out-of-order halts"
        (Ingest.Halted (Ingest.Out_of_order_epoch, "")) d);
  Alcotest.(check int) "duplicate counted" 1 (Ingest.count g Ingest.Duplicate_epoch);
  Alcotest.(check int) "negative counted" 1 (Ingest.count g Ingest.Negative_epoch);
  Alcotest.(check int) "ooo counted" 1 (Ingest.count g Ingest.Out_of_order_epoch);
  (* Clamp policy re-times bad epochs to last + 1 instead. *)
  let g = Ingest.create ~policies:(Ingest.uniform_policies Ingest.Clamp) () in
  ignore (Ingest.admit g (obs 5 (v 0. 0. 0.) []));
  (match Ingest.admit g (obs 5 (v 1. 1. 0.) []) with
  | Ingest.Accept o -> Alcotest.(check int) "re-timed to 6" 6 o.Types.o_epoch
  | _ -> Alcotest.fail "clamped duplicate must be accepted");
  match Ingest.admit g (obs 2 (v 1. 1. 0.) []) with
  | Ingest.Accept o -> Alcotest.(check int) "re-timed to 7" 7 o.Types.o_epoch
  | _ -> Alcotest.fail "clamped out-of-order must be accepted"

let test_guard_gap () =
  let g = Ingest.create ~max_gap:10 () in
  ignore (Ingest.admit g (obs 0 (v 0. 0. 0.) []));
  (* Default policy Clamp: counted but admitted unchanged. *)
  (match Ingest.admit g (obs 100 (v 0. 0. 0.) []) with
  | Ingest.Accept o -> Alcotest.(check int) "gap kept epoch" 100 o.Types.o_epoch
  | _ -> Alcotest.fail "gap must be admitted under clamp");
  Alcotest.(check int) "gap counted" 1 (Ingest.count g Ingest.Epoch_gap);
  let g =
    Ingest.create
      ~policies:{ Ingest.default_policies with Ingest.on_epoch_gap = Ingest.Drop }
      ~max_gap:10 ()
  in
  ignore (Ingest.admit g (obs 0 (v 0. 0. 0.) []));
  check_decision "gap dropped" Ingest.Rejected (Ingest.admit g (obs 100 (v 0. 0. 0.) []))

let test_guard_fix_faults () =
  (* Non-finite fix, default (Drop): the epoch survives as degraded. *)
  let g = Ingest.create () in
  ignore (Ingest.admit g (obs 0 (v 1. 1. 0.) []));
  check_decision "nan fix degrades"
    (Ingest.Degraded (1, [ Types.Object_tag 2 ]))
    (Ingest.admit g (obs 1 nan3 [ Types.Object_tag 2 ]));
  (* The degraded epoch advanced the timeline: same epoch again is now
     a duplicate. *)
  check_decision "timeline advanced" Ingest.Rejected (Ingest.admit g (obs 1 nan3 []));
  (* Clamp substitutes the last good fix... *)
  let g = Ingest.create ~policies:(Ingest.uniform_policies Ingest.Clamp) () in
  ignore (Ingest.admit g (obs 0 (v 1. 1. 0.) []));
  (match Ingest.admit g (obs 1 nan3 []) with
  | Ingest.Accept o ->
      Alcotest.(check (float 0.)) "substituted x" 1. o.Types.o_reported_loc.Rfid_geom.Vec3.x
  | _ -> Alcotest.fail "clamped NaN must be accepted");
  (* ... unless there is no good fix yet. *)
  let g = Ingest.create ~policies:(Ingest.uniform_policies Ingest.Clamp) () in
  check_decision "no fix to clamp to" (Ingest.Degraded (0, []))
    (Ingest.admit g (obs 0 nan3 []))

let test_guard_bounds () =
  let bounds = Rfid_geom.Box2.make ~min_x:0. ~min_y:0. ~max_x:10. ~max_y:10. in
  let g = Ingest.create ~bounds ~bounds_margin:1. () in
  (* Inside (with margin): untouched. *)
  (match Ingest.admit g (obs 0 (v 10.5 5. 0.) []) with
  | Ingest.Accept o ->
      Alcotest.(check (float 0.)) "margin respected" 10.5
        o.Types.o_reported_loc.Rfid_geom.Vec3.x
  | _ -> Alcotest.fail "in-margin fix must pass");
  (* Far outside: clamped onto the inflated box (default policy). *)
  (match Ingest.admit g (obs 1 (v 500. (-500.) 0.) []) with
  | Ingest.Accept o ->
      Alcotest.(check (float 1e-9)) "x clamped" 11. o.Types.o_reported_loc.Rfid_geom.Vec3.x;
      Alcotest.(check (float 1e-9)) "y clamped" (-1.)
        o.Types.o_reported_loc.Rfid_geom.Vec3.y
  | _ -> Alcotest.fail "out-of-bounds fix must be clamped");
  Alcotest.(check int) "bounds fault counted" 1 (Ingest.count g Ingest.Out_of_bounds_fix);
  (* Drop policy: degraded epoch instead. *)
  let g =
    Ingest.create ~bounds
      ~policies:
        { Ingest.default_policies with Ingest.on_out_of_bounds_fix = Ingest.Drop }
      ()
  in
  ignore (Ingest.admit g (obs 0 (v 1. 1. 0.) []));
  check_decision "oob dropped to degraded" (Ingest.Degraded (1, []))
    (Ingest.admit g (obs 1 (v 500. 500. 0.) []))

let test_guard_tags () =
  let g = Ingest.create ~max_object_id:10 () in
  (* Clamp (default): invalid tags stripped, valid ones kept. *)
  (match
     Ingest.admit g
       (obs 0 (v 0. 0. 0.)
          [ Types.Object_tag 3; Types.Object_tag 999; Types.Shelf_tag (-1) ])
   with
  | Ingest.Accept o ->
      Alcotest.(check int) "only valid tag kept" 1 (List.length o.Types.o_read_tags);
      Alcotest.(check bool) "the right one" true
        (List.mem (Types.Object_tag 3) o.Types.o_read_tags)
  | _ -> Alcotest.fail "tag fault under clamp must accept");
  Alcotest.(check int) "tag fault counted" 1 (Ingest.count g Ingest.Out_of_range_tag);
  (* Boundary: id = max_object_id - 1 is valid, id = max_object_id is not. *)
  (match Ingest.admit g (obs 1 (v 0. 0. 0.) [ Types.Object_tag 9 ]) with
  | Ingest.Accept o -> Alcotest.(check int) "boundary id kept" 1 (List.length o.Types.o_read_tags)
  | _ -> Alcotest.fail "boundary id must pass");
  let g =
    Ingest.create ~max_object_id:10
      ~policies:
        { Ingest.default_policies with Ingest.on_out_of_range_tag = Ingest.Drop }
      ()
  in
  check_decision "tag fault under drop" Ingest.Rejected
    (Ingest.admit g (obs 0 (v 0. 0. 0.) [ Types.Object_tag 10 ]))

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

let test_faults_deterministic () =
  let _, trace = Lazy.force small_scenario in
  let stream = Trace.observations trace in
  let spec =
    Rfid_sim.Faults.make ~drop_prob:0.2 ~duplicate_prob:0.1 ~nan_fix_prob:0.1
      ~spurious_tag_prob:0.1 ~reorder_prob:0.1 ~outage:(5, 5) ()
  in
  let a = Rfid_sim.Faults.apply spec ~seed:3 stream in
  let b = Rfid_sim.Faults.apply spec ~seed:3 stream in
  (* [compare], not [=]: the corrupted streams contain NaN fixes. *)
  Alcotest.(check bool) "same seed, same corruption" true (compare a b = 0);
  let c = Rfid_sim.Faults.apply spec ~seed:4 stream in
  Alcotest.(check bool) "different seed differs" true (compare a c <> 0);
  Alcotest.(check bool) "identity spec" true
    (compare (Rfid_sim.Faults.apply Rfid_sim.Faults.none ~seed:3 stream) stream = 0);
  (* The outage window really is NaN. *)
  let in_outage =
    List.filter (fun (o : Types.observation) -> o.Types.o_epoch >= 5 && o.Types.o_epoch < 10) a
  in
  Alcotest.(check bool) "outage fixes are non-finite" true
    (in_outage <> []
    && List.for_all
         (fun (o : Types.observation) ->
           Float.is_nan o.Types.o_reported_loc.Rfid_geom.Vec3.x)
         in_outage);
  Util.check_raises_invalid "bad probability" (fun () ->
      ignore (Rfid_sim.Faults.make ~drop_prob:1.5 ()))

(* ------------------------------------------------------------------ *)
(* Fault matrix: every fault kind x every policy runs to completion.   *)

let with_policy fault policy =
  let d = Ingest.default_policies in
  match fault with
  | Ingest.Nonfinite_fix -> { d with Ingest.on_nonfinite_fix = policy }
  | Ingest.Out_of_bounds_fix -> { d with Ingest.on_out_of_bounds_fix = policy }
  | Ingest.Negative_epoch -> { d with Ingest.on_negative_epoch = policy }
  | Ingest.Duplicate_epoch -> { d with Ingest.on_duplicate_epoch = policy }
  | Ingest.Out_of_order_epoch -> { d with Ingest.on_out_of_order_epoch = policy }
  | Ingest.Epoch_gap -> { d with Ingest.on_epoch_gap = policy }
  | Ingest.Out_of_range_tag -> { d with Ingest.on_out_of_range_tag = policy }

(* A short clean stream with one instance of the given fault spliced in. *)
let stream_with fault =
  let base = List.init 12 (fun e -> obs e (v (float_of_int e) 1. 0.) [ Types.Object_tag 0 ]) in
  match fault with
  | Ingest.Nonfinite_fix ->
      List.map (fun (o : Types.observation) ->
          if o.Types.o_epoch = 6 then { o with Types.o_reported_loc = nan3 } else o)
        base
  | Ingest.Out_of_bounds_fix ->
      List.map (fun (o : Types.observation) ->
          if o.Types.o_epoch = 6 then { o with Types.o_reported_loc = v 1e5 1e5 0. } else o)
        base
  | Ingest.Negative_epoch ->
      List.concat_map (fun (o : Types.observation) ->
          if o.Types.o_epoch = 6 then [ obs (-3) (v 0. 0. 0.) []; o ] else [ o ])
        base
  | Ingest.Duplicate_epoch ->
      List.concat_map (fun (o : Types.observation) ->
          if o.Types.o_epoch = 6 then [ o; o ] else [ o ])
        base
  | Ingest.Out_of_order_epoch ->
      List.concat_map (fun (o : Types.observation) ->
          if o.Types.o_epoch = 6 then [ o; obs 2 (v 2. 1. 0.) [] ] else [ o ])
        base
  | Ingest.Epoch_gap ->
      base @ [ obs 500 (v 12. 1. 0.) [] ]
  | Ingest.Out_of_range_tag ->
      List.map (fun (o : Types.observation) ->
          if o.Types.o_epoch = 6 then
            { o with Types.o_read_tags = [ Types.Object_tag 99999 ] }
          else o)
        base

let test_fault_matrix () =
  List.iter
    (fun fault ->
      List.iter
        (fun policy ->
          let what =
            Printf.sprintf "%s x %s" (Ingest.fault_name fault)
              (Ingest.policy_name policy)
          in
          let wh, _ = Lazy.force small_scenario in
          let _, _, engine = small_engine ~seed:17 () in
          let guard =
            Ingest.create
              ~policies:(with_policy fault policy)
              ~bounds:(World.bounding_box wh.Rfid_sim.Warehouse.world)
              ~max_object_id:4 ~max_gap:100 ()
          in
          (* Must run to completion — Ok, or a clean Error for the
             injected fault under Halt — without any exception. *)
          (match Ingest.run_engine guard engine (stream_with fault) with
          | Ok _ -> ()
          | Error (f, _) ->
              Alcotest.(check string) (what ^ ": halt names the fault")
                (Ingest.fault_name fault) (Ingest.fault_name f);
              Alcotest.(check string) (what ^ ": only halt stops") "halt"
                (Ingest.policy_name policy));
          Alcotest.(check bool) (what ^ ": fault counted") true
            (Ingest.count guard fault >= 1))
        [ Ingest.Drop; Ingest.Clamp; Ingest.Halt ])
    Ingest.all_faults

(* ------------------------------------------------------------------ *)
(* Degraded-mode inference                                             *)

let test_degraded_mode () =
  let _, trace, engine = small_engine () in
  let stream = Trace.observations trace in
  let n = List.length stream in
  let outage_lo = n / 3 and outage_hi = (n / 3) + 15 in
  let events = ref [] in
  let widened_before = ref None in
  List.iter
    (fun (o : Types.observation) ->
      let e = o.Types.o_epoch in
      if e >= outage_lo && e < outage_hi then begin
        if e = outage_lo then
          widened_before := Rfid_core.Engine.estimate engine 0;
        events := List.rev_append (Rfid_core.Engine.step_degraded engine ~epoch:e) !events
      end
      else events := List.rev_append (Rfid_core.Engine.step engine o) !events)
    stream;
  events := List.rev_append (Rfid_core.Engine.flush engine) !events;
  let events = List.rev !events in
  let stats = Rfid_core.Engine.stats engine in
  Alcotest.(check int) "degraded epochs counted" 15
    stats.Rfid_core.Engine.degraded_epochs;
  Alcotest.(check int) "degraded events counted"
    stats.Rfid_core.Engine.degraded_events
    (List.length (List.filter (fun e -> e.Rfid_core.Event.ev_degraded) events));
  (* Posterior widening: after 15 dead-reckoned epochs (widen_after is
     10), object 0's posterior must not have tightened. *)
  (match (!widened_before, Rfid_core.Engine.estimate engine 0) with
  | Some (_, cov0), Some (_, cov1) ->
      let spread c = c.(0).(0) +. c.(1).(1) in
      Alcotest.(check bool)
        (Printf.sprintf "posterior widened (%.4f -> %.4f)" (spread cov0) (spread cov1))
        true
        (spread cov1 > spread cov0)
  | _ -> ());
  (* Dead reckoning must still advance the clock. *)
  Alcotest.(check bool) "epoch advanced" true
    (Rfid_core.Engine.epoch engine >= outage_hi - 1);
  (* step_degraded polices epoch order like step. *)
  Util.check_raises_invalid "degraded epoch regression" (fun () ->
      ignore (Rfid_core.Engine.step_degraded engine ~epoch:0))

let test_degraded_recovery () =
  (* After an outage, fresh fixes must pull the estimates back in: the
     engine keeps producing events and does not blow up numerically. *)
  let _, trace, engine = small_engine ~variant:Rfid_core.Config.Factorized_compressed () in
  let stream = Trace.observations trace in
  let n = List.length stream in
  let stepped =
    List.concat_map
      (fun (o : Types.observation) ->
        if o.Types.o_epoch >= n / 2 && o.Types.o_epoch < (n / 2) + 8 then
          Rfid_core.Engine.step_degraded engine ~epoch:o.Types.o_epoch
        else Rfid_core.Engine.step engine o)
      stream
  in
  let events = stepped @ Rfid_core.Engine.flush engine in
  Alcotest.(check bool) "events produced" true (events <> []);
  List.iter
    (fun (ev : Rfid_core.Event.t) ->
      Alcotest.(check bool) "event locations finite" true
        (Float.is_finite ev.Rfid_core.Event.ev_loc.Rfid_geom.Vec3.x
        && Float.is_finite ev.Rfid_core.Event.ev_loc.Rfid_geom.Vec3.y))
    events

let test_degraded_shelf_tag_localization () =
  (* During an outage the fix is gone but validated shelf-tag reads
     survive: feeding them to [step_degraded ~tags] must anchor the
     reader posterior near the read tag, while a blind twin restored
     from the same snapshot drifts on dead reckoning alone. *)
  List.iter
    (fun variant ->
      let wh, trace = Lazy.force small_scenario in
      let world = wh.Rfid_sim.Warehouse.world in
      let config =
        Rfid_core.Config.create ~variant ~num_reader_particles:30
          ~num_object_particles:40 ()
      in
      let engine =
        Rfid_core.Engine.create ~world ~params:Params.default ~config
          ~init_reader:trace.Trace.steps.(0).Trace.true_reader ~num_objects:4
          ~seed:11 ()
      in
      let stream = Trace.observations trace in
      let n = List.length stream in
      let outage_lo = n / 3 and outage_len = 20 in
      List.iter
        (fun (o : Types.observation) ->
          if o.Types.o_epoch < outage_lo then ignore (Rfid_core.Engine.step engine o))
        stream;
      (* Twins from one snapshot: identical state, identical RNG. *)
      let snap = Rfid_core.Engine.snapshot engine in
      let restore () =
        Rfid_core.Engine.restore ~world ~params:Params.default ~config snap
      in
      let informed = restore () and blind = restore () in
      let nearest_tag e =
        let loc = trace.Trace.steps.(e).Trace.true_reader.Reader_state.loc in
        List.fold_left
          (fun (bt, bl) (t, l) ->
            if Rfid_geom.Vec3.dist_xy loc l < Rfid_geom.Vec3.dist_xy loc bl then (t, l)
            else (bt, bl))
          (List.hd (World.shelf_tags world))
          (World.shelf_tags world)
      in
      let informed_events = ref [] in
      for e = outage_lo to outage_lo + outage_len - 1 do
        let tag, _ = nearest_tag e in
        informed_events :=
          List.rev_append
            (Rfid_core.Engine.step_degraded ~tags:[ tag ] informed ~epoch:e)
            !informed_events;
        ignore (Rfid_core.Engine.step_degraded blind ~epoch:e)
      done;
      List.iter
        (fun (ev : Rfid_core.Event.t) ->
          Alcotest.(check bool) "outage events flagged degraded" true
            ev.Rfid_core.Event.ev_degraded)
        !informed_events;
      let last = outage_lo + outage_len - 1 in
      let _, anchor = nearest_tag last in
      let d engine =
        Rfid_geom.Vec3.dist_xy (Rfid_core.Engine.reader_estimate engine) anchor
      in
      let di = d informed and db = d blind in
      Alcotest.(check bool)
        (Printf.sprintf "shelf tags localize the reader (%.2f < %.2f)" di db)
        true (di < db))
    [ Rfid_core.Config.Unfactorized; Rfid_core.Config.Factorized_indexed ]

let test_engine_ooo_drop_policy () =
  let wh, trace = Lazy.force small_scenario in
  let engine =
    Rfid_core.Engine.create ~world:wh.Rfid_sim.Warehouse.world ~params:Params.default
      ~config:
        (Rfid_core.Config.create ~num_reader_particles:30 ~num_object_particles:40
           ~drop_out_of_order:true ())
      ~init_reader:trace.Trace.steps.(0).Trace.true_reader ~seed:11 ()
  in
  ignore (Rfid_core.Engine.step engine (obs 5 (v 0. 0. 0.) []));
  Alcotest.(check int) "ooo dropped silently" 0
    (List.length (Rfid_core.Engine.step engine (obs 2 (v 0. 0. 0.) [])));
  Alcotest.(check int) "ooo counted" 1
    (Rfid_core.Engine.stats engine).Rfid_core.Engine.out_of_order_dropped

let suite =
  ( "robust",
    [
      Alcotest.test_case "guard passthrough" `Quick test_guard_clean_passthrough;
      Alcotest.test_case "guard epoch faults" `Quick test_guard_epoch_faults;
      Alcotest.test_case "guard gap" `Quick test_guard_gap;
      Alcotest.test_case "guard fix faults" `Quick test_guard_fix_faults;
      Alcotest.test_case "guard bounds" `Quick test_guard_bounds;
      Alcotest.test_case "guard tags" `Quick test_guard_tags;
      Alcotest.test_case "fault injection deterministic" `Quick test_faults_deterministic;
      Alcotest.test_case "fault matrix" `Slow test_fault_matrix;
      Alcotest.test_case "degraded mode" `Quick test_degraded_mode;
      Alcotest.test_case "degraded recovery" `Quick test_degraded_recovery;
      Alcotest.test_case "degraded shelf-tag localization" `Quick
        test_degraded_shelf_tag_localization;
      Alcotest.test_case "engine ooo drop policy" `Quick test_engine_ooo_drop_policy;
    ] )
