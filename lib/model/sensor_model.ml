open Rfid_geom

type t = { a0 : float; a1 : float; a2 : float; b1 : float; b2 : float }

(* sigmoid(3 - 0.4 d - 0.25 d^2 - 1.2 th - 1.5 th^2):
   ~95% at contact, 50% near d = 2.7 ft head-on, and the half-power
   angle shrinks with distance — a cone-like region. *)
let default = { a0 = 3.0; a1 = -0.4; a2 = -0.25; b1 = -1.2; b2 = -1.5 }

let features ~d ~theta =
  let theta = Float.abs theta in
  [| 1.; d; d *. d; theta; theta *. theta |]

let of_coef = function
  | [| a0; a1; a2; b1; b2 |] -> { a0; a1; a2; b1; b2 }
  | _ -> invalid_arg "Sensor_model.of_coef: expected 5 coefficients"

let to_coef { a0; a1; a2; b1; b2 } = [| a0; a1; a2; b1; b2 |]

let logit t ~d ~theta =
  let theta = Float.abs theta in
  t.a0 +. (t.a1 *. d) +. (t.a2 *. d *. d) +. (t.b1 *. theta) +. (t.b2 *. theta *. theta)

let read_prob_at t ~d ~theta = Rfid_prob.Logistic.sigmoid (logit t ~d ~theta)

(* Wrap an angle into (-pi, pi]. *)
let wrap a =
  let two_pi = 2. *. Float.pi in
  let a = Float.rem a two_pi in
  if a > Float.pi then a -. two_pi else if a <= -.Float.pi then a +. two_pi else a

let geometry ~reader_loc ~reader_heading ~tag_loc =
  let delta = Vec3.sub tag_loc reader_loc in
  let d = Vec3.norm delta in
  let theta =
    if delta.Vec3.x = 0. && delta.Vec3.y = 0. then 0.
    else Float.abs (wrap (Vec3.xy_angle delta -. reader_heading))
  in
  (d, theta)

let read_prob t ~reader_loc ~reader_heading ~tag_loc =
  let d, theta = geometry ~reader_loc ~reader_heading ~tag_loc in
  read_prob_at t ~d ~theta

let log_prob t ~reader_loc ~reader_heading ~tag_loc ~read =
  let d, theta = geometry ~reader_loc ~reader_heading ~tag_loc in
  let z = logit t ~d ~theta in
  if read then Rfid_prob.Logistic.log_sigmoid z else Rfid_prob.Logistic.log_sigmoid (-.z)

(* Exact saturation culling (DESIGN.md section 9). The miss term is
   [log_sigmoid (-.logit)]; once the logit falls below
   [Logistic.exp_underflow], that term is exactly -0.0 in IEEE-754
   double, and accumulating it is a bitwise no-op — so any particle
   provably past the distance where the logit is that low can be
   skipped without changing a single output bit.

   [saturation_radius] returns the smallest radius r such that for
   every computed distance d > r (and every angle the kernels can
   produce, |theta| <= 3.1416 — slightly over pi to absorb wrap
   rounding), the kernels' float evaluation of the logit is at or
   below [exp_underflow + margin], where the ~0.87 margin between
   -746 and the true underflow cutoff (~-745.134) absorbs every
   rounding effect. Concretely, with q(d) = a2 d^2 + a1 d + c and
   c = a0 + max_theta(b1 th + b2 th^2) - exp_underflow, r is the
   larger root of q (q < 0 beyond it when a2 < 0). The derivation
   needs a2 < 0 (the logit must eventually decrease in distance);
   whenever the closed form does not apply, or the coefficients are
   scaled so wildly that float evaluation error near the radius could
   eat the margin, the function returns [infinity] — culling simply
   disables and the kernels run everything, which is always correct.

   Float-safety envelope: the kernel evaluates the logit as a
   left-to-right sum whose total rounding error is bounded by a few
   ulps of the largest intermediate magnitude. Requiring
   |a0| <= 1e11, |b1| <= 1e10, |b2| <= 1e10, |a1| r <= 1e12 and
   |a2| r^2 <= 1e12 caps that magnitude near the radius at ~1e12, so
   the error there is below ~1e-2 — far under the margin. Beyond the
   radius (culling is further capped at d <= 1e8, so no intermediate
   can overflow to infinity and produce a NaN via inf - inf), the
   real slack -q(d) grows at least as fast as the evaluation error:
   writing d = lambda r, the error grows like 1e-3 lambda^2 while the
   slack grows like |a2| r^2 (lambda - 1)^2 with |a2| r^2 >= O(1)
   whenever the quadratic term matters, so the bound holds for all
   culled distances, not just at r. A final point check verifies the
   computed logit bound at r is comfortably under the cutoff. *)

let sat_theta_bound = 3.1416
let sat_d_max = 1e8
let sat_d2_max = 1e16  (* sat_d_max^2: cull only below it (no overflow/NaN) *)

let saturation_radius t =
  let { a0; a1; a2; b1; b2 } = t in
  let finite = Float.is_finite in
  if
    not (finite a0 && finite a1 && finite a2 && finite b1 && finite b2)
    || not (a2 < 0.)
    || Float.abs a0 > 1e11
    || Float.abs b1 > 1e10
    || Float.abs b2 > 1e10
  then infinity
  else begin
    (* Largest value of b1 th + b2 th^2 over [0, sat_theta_bound]:
       endpoints plus the interior vertex when b2 < 0 puts one there. *)
    let th_term th = (b1 *. th) +. (b2 *. th *. th) in
    let m_theta =
      let m = Float.max (th_term 0.) (th_term sat_theta_bound) in
      if b2 < 0. then begin
        let v = -.b1 /. (2. *. b2) in
        if v > 0. && v < sat_theta_bound then Float.max m (th_term v) else m
      end
      else m
    in
    let c = a0 +. m_theta -. Rfid_prob.Logistic.exp_underflow in
    let disc = (a1 *. a1) -. (4. *. a2 *. c) in
    let r =
      if disc < 0. then 0.
      else begin
        (* Larger root of a2 d^2 + a1 d + c (2 a2 < 0 flips the sign). *)
        let root = ((-.a1) -. sqrt disc) /. (2. *. a2) in
        if root < 0. then 0. else root
      end
    in
    if not (Float.is_finite r) then infinity
    else begin
      (* Nudge up so the root-formula rounding can only over-cull
         nothing (a slightly larger radius culls strictly less). *)
      let r = (r *. 1.000001) +. 1e-9 in
      let vertex = if a1 <= 0. then 0. else -.a1 /. (2. *. a2) in
      if
        r > sat_d_max || r < vertex
        || Float.abs a1 *. r > 1e12
        || Float.abs a2 *. r *. r > 1e12
        || not
             (a0 +. (a1 *. r) +. (a2 *. r *. r) +. m_theta
             <= Rfid_prob.Logistic.exp_underflow +. 0.4)
      then infinity
      else r
    end
  end

(* Per-epoch memo of reader-particle poses for the filter hot paths:
   the pose-dependent inputs of the logit live in flat unboxed slabs
   (one slot per reader particle), so the per-object-particle weight
   evaluation reads four floats by index instead of chasing a boxed
   [Vec3.t] through a particle record, and builds no intermediate
   vector. [log_prob_pre] replicates [geometry] + [logit] + the
   log-sigmoid branch operation for operation, so its result is
   bit-identical to [log_prob] on the memoized pose. *)

type pre = {
  pm : t;
  psat2 : float;
      (* squared saturation radius of [pm] ([infinity] = cull disabled):
         a miss term at squared distance beyond it is exactly -0.0 *)
  mutable pn : int;
  mutable prx : floatarray;
  mutable pry : floatarray;
  mutable prz : floatarray;
  mutable phead : floatarray;
  mutable pbad : int;
      (* pose slots in [0, pn) holding a non-finite component: the
         saturation argument assumes finite poses, so culling is
         disabled (cut forced to infinity) while any are present *)
  mutable pstamp : int;  (* bumped whenever memo contents may change *)
  mutable hits : int;
}

let precompute t ~n =
  if n < 0 then invalid_arg "Sensor_model.precompute: negative size";
  let cap = Int.max n 1 in
  let r = saturation_radius t in
  {
    pm = t;
    psat2 = r *. r;
    pn = n;
    prx = Float.Array.make cap 0.;
    pry = Float.Array.make cap 0.;
    prz = Float.Array.make cap 0.;
    phead = Float.Array.make cap 0.;
    pbad = 0;
    pstamp = 0;
    hits = 0;
  }

let pre_size p = p.pn
let pre_stamp p = p.pstamp

let slot_bad p i =
  not
    (Float.is_finite (Float.Array.unsafe_get p.prx i)
    && Float.is_finite (Float.Array.unsafe_get p.pry i)
    && Float.is_finite (Float.Array.unsafe_get p.prz i)
    && Float.is_finite (Float.Array.unsafe_get p.phead i))

let recount_bad p =
  let bad = ref 0 in
  for i = 0 to p.pn - 1 do
    if slot_bad p i then incr bad
  done;
  p.pbad <- !bad

let pre_resize p n =
  if n < 0 then invalid_arg "Sensor_model.pre_resize: negative size";
  let changed = n <> p.pn || n > Float.Array.length p.prx in
  if n > Float.Array.length p.prx then begin
    let cap = Int.max n (2 * Float.Array.length p.prx) in
    p.prx <- Float.Array.make cap 0.;
    p.pry <- Float.Array.make cap 0.;
    p.prz <- Float.Array.make cap 0.;
    p.phead <- Float.Array.make cap 0.
  end;
  p.pn <- n;
  if changed then begin
    p.pstamp <- p.pstamp + 1;
    recount_bad p
  end

let pre_set_pose p i ~x ~y ~z ~heading =
  if i < 0 || i >= p.pn then invalid_arg "Sensor_model.pre_set_pose: index out of range";
  let was_bad = slot_bad p i in
  Float.Array.unsafe_set p.prx i x;
  Float.Array.unsafe_set p.pry i y;
  Float.Array.unsafe_set p.prz i z;
  Float.Array.unsafe_set p.phead i heading;
  let is_bad = slot_bad p i in
  if is_bad <> was_bad then p.pbad <- p.pbad + (if is_bad then 1 else -1);
  p.pstamp <- p.pstamp + 1

(* Zero-sign-exact equality: the kernels' arithmetic distinguishes
   +0.0 from -0.0 ([atan2 dy dx] and subtraction both do), so a pose
   "same" test must too; NaN never compares equal, so a NaN pose is
   conservatively treated as changed. *)
let same_float v w =
  v = w && (v <> 0. || Float.sign_bit v = Float.sign_bit w)

let pre_set_pose_checked p i ~x ~y ~z ~heading =
  if i < 0 || i >= p.pn then
    invalid_arg "Sensor_model.pre_set_pose_checked: index out of range";
  if
    same_float (Float.Array.unsafe_get p.prx i) x
    && same_float (Float.Array.unsafe_get p.pry i) y
    && same_float (Float.Array.unsafe_get p.prz i) z
    && same_float (Float.Array.unsafe_get p.phead i) heading
  then false
  else begin
    pre_set_pose p i ~x ~y ~z ~heading;
    true
  end

let log_prob_pre p i ~tx ~ty ~tz ~read =
  if i < 0 || i >= p.pn then invalid_arg "Sensor_model.log_prob_pre: index out of range";
  let dx = tx -. Float.Array.unsafe_get p.prx i in
  let dy = ty -. Float.Array.unsafe_get p.pry i in
  let dz = tz -. Float.Array.unsafe_get p.prz i in
  (* [Vec3.norm (sub tag reader)] and [geometry]'s angle, verbatim. *)
  let d = sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) in
  let theta =
    if dx = 0. && dy = 0. then 0.
    else Float.abs (wrap (atan2 dy dx -. Float.Array.unsafe_get p.phead i))
  in
  let m = p.pm in
  let z =
    m.a0 +. (m.a1 *. d) +. (m.a2 *. d *. d) +. (m.b1 *. theta) +. (m.b2 *. theta *. theta)
  in
  if read then Rfid_prob.Logistic.log_sigmoid z else Rfid_prob.Logistic.log_sigmoid (-.z)

(* Batched memo accumulation. One cross-module call per (object, epoch)
   or (tag, epoch) that loops over a whole particle store / pose set
   internally, instead of one [log_prob_pre] call per particle: without
   flambda every float crossing a module boundary is boxed, so the
   call-per-particle shape allocates ~30 words per sensor term while
   these loops allocate nothing. The body is [log_prob_pre] verbatim
   (same ops, same order, [Logistic.log_sigmoid]'s formula inlined
   textually), so results are bit-identical. *)

(* The sensor term below appears three times, textually identical:
   without flambda, `[@inline]` is ignored and even a same-module call
   to a shared helper boxes its float arguments and result (~7 words
   per particle), so the body is hand-inlined into each loop. Any edit
   to one copy must be applied to all three.

   Saturation cull: [cut] is the squared-distance gate — the memo's
   [psat2] for a miss term (forced to [infinity], i.e. never taken,
   for a read term, which saturates to the non-constant [z] rather
   than -0.0, when any memoized pose is non-finite, or in the tag
   kernel when [miss_weight] cannot carry -0.0 through its scaling).
   A culled entry's term is exactly -0.0, so skipping the accumulate
   is a bitwise no-op; the [d2 <= sat_d2_max] side keeps the skip
   inside the radius derivation's no-overflow envelope, and both
   comparisons are false on a NaN [d2], which falls through to the
   full kernel (always correct). Each kernel returns how many entries
   it culled, so callers can account for skipped work without the
   kernels touching any shared counter. *)

let pre_accumulate_store p store ~read =
  let n = Rfid_prob.Particle_store.length store in
  let xs, ys, zs, lw, ridx = Rfid_prob.Particle_store.backing store in
  let cut = if read || p.pbad > 0 then infinity else p.psat2 in
  let culled = ref 0 in
  for i = 0 to n - 1 do
    let r = Array.unsafe_get ridx i in
    if r < 0 || r >= p.pn then
      invalid_arg "Sensor_model.pre_accumulate_store: reader index out of range";
    let dx = Float.Array.unsafe_get xs i -. Float.Array.unsafe_get p.prx r in
    let dy = Float.Array.unsafe_get ys i -. Float.Array.unsafe_get p.pry r in
    let dz = Float.Array.unsafe_get zs i -. Float.Array.unsafe_get p.prz r in
    let d2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
    if d2 > cut && d2 <= sat_d2_max then incr culled
    else begin
      let d = sqrt d2 in
      let theta =
        if dx = 0. && dy = 0. then 0.
        else begin
          (* [wrap], inlined: a same-module call still boxes its float
             argument and result without flambda. *)
          let a = atan2 dy dx -. Float.Array.unsafe_get p.phead r in
          let two_pi = 2. *. Float.pi in
          let a = Float.rem a two_pi in
          let a =
            if a > Float.pi then a -. two_pi
            else if a <= -.Float.pi then a +. two_pi
            else a
          in
          Float.abs a
        end
      in
      let m = p.pm in
      let z =
        m.a0 +. (m.a1 *. d) +. (m.a2 *. d *. d) +. (m.b1 *. theta)
        +. (m.b2 *. theta *. theta)
      in
      let z = if read then z else -.z in
      (* Rfid_prob.Logistic.log_sigmoid, inlined to keep the float unboxed. *)
      let l = if z >= 0. then -.log1p (exp (-.z)) else z -. log1p (exp z) in
      Float.Array.unsafe_set lw i (Float.Array.unsafe_get lw i +. l)
    end
  done;
  !culled

let pre_accumulate_tag p ~tx ~ty ~tz ~read ~miss_weight acc =
  if Array.length acc < p.pn then
    invalid_arg "Sensor_model.pre_accumulate_tag: accumulator shorter than pose set";
  (* The culled miss term is [miss_weight *. -0.0], a bitwise no-op
     only when that product is itself -0.0 — true exactly for a
     non-negative [miss_weight] whose sign bit is clear (+0.0 or
     positive; a negative, -0.0 or NaN weight flips/poisons the
     product), so anything else disables the cull. *)
  let cut =
    if read || p.pbad > 0 || not (miss_weight >= 0. && not (Float.sign_bit miss_weight))
    then infinity
    else p.psat2
  in
  let culled = ref 0 in
  for r = 0 to p.pn - 1 do
    let dx = tx -. Float.Array.unsafe_get p.prx r in
    let dy = ty -. Float.Array.unsafe_get p.pry r in
    let dz = tz -. Float.Array.unsafe_get p.prz r in
    let d2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
    if d2 > cut && d2 <= sat_d2_max then incr culled
    else begin
      let d = sqrt d2 in
      let theta =
        if dx = 0. && dy = 0. then 0.
        else begin
          (* [wrap], inlined: a same-module call still boxes its float
             argument and result without flambda. *)
          let a = atan2 dy dx -. Float.Array.unsafe_get p.phead r in
          let two_pi = 2. *. Float.pi in
          let a = Float.rem a two_pi in
          let a =
            if a > Float.pi then a -. two_pi
            else if a <= -.Float.pi then a +. two_pi
            else a
          in
          Float.abs a
        end
      in
      let m = p.pm in
      let z =
        m.a0 +. (m.a1 *. d) +. (m.a2 *. d *. d) +. (m.b1 *. theta)
        +. (m.b2 *. theta *. theta)
      in
      let z = if read then z else -.z in
      let l = if z >= 0. then -.log1p (exp (-.z)) else z -. log1p (exp z) in
      let l = if read then l else miss_weight *. l in
      Array.unsafe_set acc r (Array.unsafe_get acc r +. l)
    end
  done;
  !culled

let pre_accumulate_joint_obj p store ~obj ~num_objects ~read acc =
  if Array.length acc < p.pn then
    invalid_arg "Sensor_model.pre_accumulate_joint_obj: accumulator shorter than pose set";
  if obj < 0 || obj >= num_objects then
    invalid_arg "Sensor_model.pre_accumulate_joint_obj: object out of range";
  if p.pn * num_objects > Rfid_prob.Particle_store.length store then
    invalid_arg "Sensor_model.pre_accumulate_joint_obj: store shorter than pose set";
  let xs, ys, zs, _, _ = Rfid_prob.Particle_store.backing store in
  let cut = if read || p.pbad > 0 then infinity else p.psat2 in
  let culled = ref 0 in
  for r = 0 to p.pn - 1 do
    let s = (r * num_objects) + obj in
    let dx = Float.Array.unsafe_get xs s -. Float.Array.unsafe_get p.prx r in
    let dy = Float.Array.unsafe_get ys s -. Float.Array.unsafe_get p.pry r in
    let dz = Float.Array.unsafe_get zs s -. Float.Array.unsafe_get p.prz r in
    let d2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
    if d2 > cut && d2 <= sat_d2_max then incr culled
    else begin
      let d = sqrt d2 in
      let theta =
        if dx = 0. && dy = 0. then 0.
        else begin
          (* [wrap], inlined: a same-module call still boxes its float
             argument and result without flambda. *)
          let a = atan2 dy dx -. Float.Array.unsafe_get p.phead r in
          let two_pi = 2. *. Float.pi in
          let a = Float.rem a two_pi in
          let a =
            if a > Float.pi then a -. two_pi
            else if a <= -.Float.pi then a +. two_pi
            else a
          in
          Float.abs a
        end
      in
      let m = p.pm in
      let z =
        m.a0 +. (m.a1 *. d) +. (m.a2 *. d *. d) +. (m.b1 *. theta)
        +. (m.b2 *. theta *. theta)
      in
      let z = if read then z else -.z in
      let l = if z >= 0. then -.log1p (exp (-.z)) else z -. log1p (exp z) in
      Array.unsafe_set acc r (Array.unsafe_get acc r +. l)
    end
  done;
  !culled

let pre_poses p = (p.prx, p.pry, p.prz, p.phead)

let pre_note_hits p k = p.hits <- p.hits + k
let pre_hits p = p.hits

let max_search_range = 100.

let detection_range ?(threshold = 0.02) t =
  if read_prob_at t ~d:0. ~theta:0. < threshold then 0.
  else begin
    (* First head-on crossing below the threshold. A fitted model can
       have a non-monotone logit (e.g. a slightly positive quadratic
       term from noisy calibration data); scanning outward from 0 keeps
       the range physical — the region past a rebound is an artifact of
       extrapolating the polynomial, not a real detection zone. *)
    let step = 0.25 in
    let rec find_bracket d =
      if d >= max_search_range then max_search_range
      else if read_prob_at t ~d:(d +. step) ~theta:0. < threshold then d +. step
      else find_bracket (d +. step)
    in
    let hi = find_bracket 0. in
    if hi >= max_search_range then max_search_range
    else begin
      let lo = Float.max 0. (hi -. step) in
      let rec bisect lo hi k =
        if k = 0 then hi
        else begin
          let mid = (lo +. hi) /. 2. in
          if read_prob_at t ~d:mid ~theta:0. < threshold then bisect lo mid (k - 1)
          else bisect mid hi (k - 1)
        end
      in
      bisect lo hi 40
    end
  end

let detection_half_angle ?(threshold = 0.02) t ~d =
  if read_prob_at t ~d ~theta:Float.pi >= threshold then Float.pi
  else if read_prob_at t ~d ~theta:0. < threshold then 0.
  else begin
    let rec bisect lo hi k =
      if k = 0 then hi
      else begin
        let mid = (lo +. hi) /. 2. in
        if read_prob_at t ~d ~theta:mid < threshold then bisect lo mid (k - 1)
        else bisect mid hi (k - 1)
      end
    in
    bisect 0. Float.pi 40
  end

let sensing_region_box ?threshold t ~reader_loc =
  let r = detection_range ?threshold t in
  Box2.of_center reader_loc ~half_width:r ~half_height:r

let initialization_cone ?(overestimate = 1.25) t ~reader_loc ~reader_heading =
  let range = Float.max 0.5 (overestimate *. detection_range t) in
  let half_angle =
    Float.min Float.pi (Float.max 0.2 (overestimate *. detection_half_angle t ~d:(range /. 2.)))
  in
  Cone.make ~apex:reader_loc ~heading:reader_heading ~half_angle ~range

let pp ppf t =
  Format.fprintf ppf "sigmoid(%.3f %+.3f d %+.3f d^2 %+.3f th %+.3f th^2)" t.a0 t.a1
    t.a2 t.b1 t.b2
