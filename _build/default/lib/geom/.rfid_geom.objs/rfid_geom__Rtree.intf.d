lib/geom/rtree.mli: Box2
