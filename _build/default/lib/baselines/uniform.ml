open Rfid_model

type config = {
  read_range : float;
  out_of_scope_after : int;
  heading_of : (Types.epoch -> float) option;
}

let default_config ?heading_of ~read_range () =
  if read_range <= 0. then
    invalid_arg "Uniform.default_config: read_range must be positive";
  { read_range; out_of_scope_after = 15; heading_of }

type tag_state = {
  mutable last_read : int;
  mutable sample : Rfid_geom.Vec3.t;
  mutable open_period : bool;
}

let run ~world ~config ~seed observations =
  let rng = Rfid_prob.Rng.create ~seed in
  let tags : (int, tag_state) Hashtbl.t = Hashtbl.create 64 in
  let events = ref [] in
  let close obj st =
    events := Rfid_core.Event.make ~epoch:st.last_read ~obj ~loc:st.sample () :: !events;
    st.open_period <- false
  in
  List.iter
    (fun (obs : Types.observation) ->
      let e = obs.Types.o_epoch in
      List.iter
        (fun tag ->
          match tag with
          | Types.Shelf_tag _ -> ()
          | Types.Object_tag obj ->
              let sample =
                let facing = Option.map (fun f -> f e) config.heading_of in
                Smurf.sample_in_range world rng ~center:obs.Types.o_reported_loc
                  ~range:config.read_range ?facing ()
              in
              let st =
                match Hashtbl.find_opt tags obj with
                | Some st -> st
                | None ->
                    let st = { last_read = e; sample; open_period = false } in
                    Hashtbl.replace tags obj st;
                    st
              in
              if st.open_period && e - st.last_read > config.out_of_scope_after then
                close obj st;
              st.last_read <- e;
              st.sample <- sample;
              st.open_period <- true)
        obs.Types.o_read_tags;
      (* Close periods that timed out this epoch. *)
      Hashtbl.iter
        (fun obj st ->
          if st.open_period && e - st.last_read > config.out_of_scope_after then
            close obj st)
        tags)
    observations;
  Hashtbl.iter (fun obj st -> if st.open_period then close obj st) tags;
  List.rev !events
