(* Inter-object containment inference (the paper's §VII future work):
   three crates packed in the same case move together between two scan
   rounds; the containment module recovers the case from nothing but
   the cleaned location events.

   Run with:  dune exec examples/containment.exe *)

open Rfid_model

let () =
  let wh = Rfid_sim.Warehouse.layout ~num_objects:12 () in
  let case = [ 3; 4; 5 ] in
  let path = Rfid_sim.Trace_gen.straight_pass wh ~rounds:2 in
  let half = List.fold_left (fun a s -> a + s.Rfid_sim.Trace_gen.seg_epochs) 0 path / 2 in
  let movements =
    List.map
      (fun obj ->
        let orig = wh.Rfid_sim.Warehouse.object_locs.(obj) in
        {
          Rfid_sim.Trace_gen.move_epoch = half;
          move_obj = obj;
          move_to =
            World.clamp_to_shelves wh.Rfid_sim.Warehouse.world
              (Rfid_geom.Vec3.add orig (Rfid_geom.Vec3.make 0. 3. 0.));
        })
      case
  in
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path
      ~config:{ (Rfid_sim.Trace_gen.default_config ()) with Rfid_sim.Trace_gen.movements }
      (Rfid_prob.Rng.create ~seed:67)
  in
  Printf.printf "two scan rounds; case {3,4,5} moved 3 ft between rounds\n\n";

  let cone = Rfid_sim.Truth_sensor.cone () in
  let sensor =
    Rfid_learn.Supervised.fit_sensor ~read_prob:cone.Rfid_sim.Truth_sensor.read_prob
      ~seed:2 ()
  in
  let engine =
    Rfid_core.Engine.create ~world:wh.Rfid_sim.Warehouse.world
      ~params:(Params.create ~sensor ())
      ~config:(Rfid_core.Config.create ~variant:Rfid_core.Config.Factorized_indexed ())
      ~init_reader:trace.Trace.steps.(0).Trace.true_reader ~seed:3 ()
  in
  let events = Rfid_core.Engine.run engine (Trace.observations trace) in
  let round1, round2 =
    List.partition (fun (ev : Rfid_core.Event.t) -> ev.Rfid_core.Event.ev_epoch < half) events
  in
  Printf.printf "cleaned events: %d (round 1), %d (round 2)\n" (List.length round1)
    (List.length round2);

  let c =
    Rfid_stream.Containment.create
      ~config:
        { Rfid_stream.Containment.default_config with
          Rfid_stream.Containment.min_support = 3.5 }
      ~num_objects:12 ()
  in
  Rfid_stream.Containment.of_events c ~rounds:[ round1; round2 ];
  Format.printf "@.inferred containment groups: %a@."
    Rfid_stream.Containment.pp_groups
    (Rfid_stream.Containment.groups c);
  Printf.printf "pair support 3-4: %.1f, 4-5: %.1f, 3-9 (unrelated): %.1f\n"
    (Rfid_stream.Containment.support c 3 4)
    (Rfid_stream.Containment.support c 4 5)
    (Rfid_stream.Containment.support c 3 9)
