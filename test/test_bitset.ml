(* Tests for the scratch bitset behind the factored filter's scope
   tracking: behavioral equivalence with a sorted int set under random
   operation traces, plus the word-boundary edges a dense bit
   representation can get wrong (bit 62 of a 63-bit OCaml int in
   particular). *)
module Bitset = Rfid_prob.Bitset
module IS = Set.Make (Int)

let test_basics () =
  let b = Bitset.create () in
  Alcotest.(check bool) "fresh empty" true (Bitset.is_empty b);
  Alcotest.(check int) "fresh cardinal" 0 (Bitset.cardinal b);
  Alcotest.(check bool) "mem on empty" false (Bitset.mem b 17);
  Bitset.add b 17;
  Bitset.add b 17;
  Alcotest.(check bool) "mem after add" true (Bitset.mem b 17);
  Alcotest.(check int) "add idempotent" 1 (Bitset.cardinal b);
  Bitset.remove b 17;
  Bitset.remove b 17;
  Alcotest.(check int) "remove idempotent" 0 (Bitset.cardinal b);
  Bitset.remove b 123456;  (* beyond capacity: no-op, no growth needed *)
  Alcotest.(check bool) "mem beyond capacity" false (Bitset.mem b 123456)

let test_negative_ids () =
  let b = Bitset.create () in
  Alcotest.(check bool) "mem negative is false" false (Bitset.mem b (-1));
  Util.check_raises_invalid "add negative" (fun () -> Bitset.add b (-1))

(* The elements that land on word boundaries: 62 is the top bit of a
   63-bit OCaml int (so [1 lsl 62] is negative), 63 starts word 1. *)
let test_word_boundaries () =
  let b = Bitset.create () in
  let ids = [ 0; 61; 62; 63; 64; 125; 126; 127; 1000 ] in
  List.iter (Bitset.add b) ids;
  Alcotest.(check int) "cardinal" (List.length ids) (Bitset.cardinal b);
  Alcotest.(check (list int)) "elements ascending" ids (Bitset.elements b);
  let out = Array.make 16 (-1) in
  let n = Bitset.fill_into b out in
  Alcotest.(check (list int)) "fill_into ascending" ids
    (Array.to_list (Array.sub out 0 n));
  List.iter (fun i -> Alcotest.(check bool) "mem" true (Bitset.mem b i)) ids;
  Bitset.remove b 62;
  Alcotest.(check (list int)) "remove top bit of word 0"
    [ 0; 61; 63; 64; 125; 126; 127; 1000 ]
    (Bitset.elements b)

let test_clear_reuse () =
  let b = Bitset.create ~capacity:4 () in
  for i = 0 to 200 do
    Bitset.add b (i * 3)
  done;
  Bitset.clear b;
  Alcotest.(check bool) "cleared" true (Bitset.is_empty b);
  Alcotest.(check (list int)) "no stale bits" [] (Bitset.elements b);
  Bitset.add b 5;
  Alcotest.(check (list int)) "usable after clear" [ 5 ] (Bitset.elements b)

let test_union_into () =
  let a = Bitset.create () and b = Bitset.create () in
  List.iter (Bitset.add a) [ 1; 62; 100 ];
  List.iter (Bitset.add b) [ 2; 62; 500 ];
  Bitset.union_into ~into:a b;
  Alcotest.(check (list int)) "union" [ 1; 2; 62; 100; 500 ] (Bitset.elements a);
  Alcotest.(check int) "cardinal tracks overlap" 5 (Bitset.cardinal a);
  Alcotest.(check (list int)) "source untouched" [ 2; 62; 500 ] (Bitset.elements b);
  Bitset.union_into ~into:a b;
  Alcotest.(check int) "idempotent" 5 (Bitset.cardinal a)

(* Random operation traces against [Set.Make (Int)]: after every
   operation the bitset and the model agree on membership, cardinality
   and (periodically) the full ascending element list. This is the
   contract the filter's scope/pending sets rely on when they swap
   [Int_set] for the bitset. *)
let prop_matches_int_set =
  Util.qcheck ~count:100 "random op trace matches Set.Make(Int)" QCheck.small_int
    (fun seed ->
      let rng = Rfid_prob.Rng.create ~seed in
      let b = Bitset.create () in
      let model = ref IS.empty in
      let ok = ref true in
      for step = 1 to 400 do
        let id = Rfid_prob.Rng.int rng 300 in
        (match Rfid_prob.Rng.int rng 100 with
        | r when r < 55 ->
            Bitset.add b id;
            model := IS.add id !model
        | r when r < 85 ->
            Bitset.remove b id;
            model := IS.remove id !model
        | r when r < 97 ->
            if Bitset.mem b id <> IS.mem id !model then ok := false
        | _ ->
            Bitset.clear b;
            model := IS.empty);
        if Bitset.cardinal b <> IS.cardinal !model then ok := false;
        if step mod 50 = 0 && Bitset.elements b <> IS.elements !model then ok := false
      done;
      !ok && Bitset.elements b = IS.elements !model)

let prop_fill_into_matches_elements =
  Util.qcheck ~count:100 "fill_into = elements" QCheck.small_int (fun seed ->
      let rng = Rfid_prob.Rng.create ~seed in
      let b = Bitset.create () in
      for _ = 1 to 80 do
        Bitset.add b (Rfid_prob.Rng.int rng 400)
      done;
      let out = Array.make (Bitset.cardinal b) (-1) in
      let n = Bitset.fill_into b out in
      n = Bitset.cardinal b
      && Array.to_list (Array.sub out 0 n) = Bitset.elements b)

let suite =
  ( "bitset",
    [
      Alcotest.test_case "basics" `Quick test_basics;
      Alcotest.test_case "negative ids" `Quick test_negative_ids;
      Alcotest.test_case "word boundaries" `Quick test_word_boundaries;
      Alcotest.test_case "clear/reuse" `Quick test_clear_reuse;
      Alcotest.test_case "union_into" `Quick test_union_into;
      prop_matches_int_set;
      prop_fill_into_matches_elements;
    ] )
