lib/model/sensor_model.ml: Box2 Cone Float Format Rfid_geom Rfid_prob Vec3
