examples/containment.mli:
