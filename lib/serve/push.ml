(* Conservative datagram payload bound: under the common 1500-byte MTU
   minus headers fragmentation still works, but some collectors drop
   fragmented datagrams; 1400 keeps each chunk whole on any sane path.
   Exceeded only by a single metric line longer than the bound, which
   is sent as its own (possibly fragmented) datagram rather than
   truncated. *)
let max_datagram = 1400

type t = {
  socket : Unix.file_descr;
  addr : Unix.sockaddr;
  mutable sends : int;
  mutable send_errors : int;
}

let create ~host ~port =
  if port < 1 || port > 65535 then
    Error (Printf.sprintf "invalid metrics port %d" port)
  else
    match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_DGRAM ] with
    | [] -> Error (Printf.sprintf "cannot resolve metrics host %S" host)
    | ai :: _ -> (
        try
          let socket =
            Unix.socket ai.Unix.ai_family ai.Unix.ai_socktype ai.Unix.ai_protocol
          in
          Unix.set_nonblock socket;
          Ok { socket; addr = ai.Unix.ai_addr; sends = 0; send_errors = 0 }
        with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

let send_chunk t chunk =
  let bytes = Bytes.of_string chunk in
  try
    ignore (Unix.sendto t.socket bytes 0 (Bytes.length bytes) [] t.addr);
    t.sends <- t.sends + 1
  with Unix.Unix_error _ -> t.send_errors <- t.send_errors + 1

let send t text =
  let n = String.length text in
  let start = ref 0 and cursor = ref 0 and last_nl = ref (-1) in
  while !cursor < n do
    if text.[!cursor] = '\n' then last_nl := !cursor;
    if !cursor - !start + 1 > max_datagram && !last_nl >= !start then begin
      send_chunk t (String.sub text !start (!last_nl - !start + 1));
      start := !last_nl + 1
    end;
    incr cursor
  done;
  if !start < n then send_chunk t (String.sub text !start (n - !start))

let sends t = t.sends
let send_errors t = t.send_errors

let close t = try Unix.close t.socket with Unix.Unix_error _ -> ()
