(** Portable binary codec for {!Rfid_core.Engine.snapshot}.

    OCaml's [Marshal] ties a byte stream to the compiler build that
    wrote it, which makes checkpoints useless for shard handoff,
    rolling upgrades, or cross-host recovery. This codec writes an
    explicit format instead: every integer is a little-endian 64-bit
    word, every float its IEEE-754 bits likewise, so the bytes mean the
    same thing on any platform and any future build.

    Layout: a 4-byte magic (["RCOD"]), a version byte, a snapshot-kind
    byte, then a fixed sequence of {e sections} — [name, body length,
    body, Adler-32 of the body] — covering the complete snapshot: RNG
    states, particle slabs, R-tree entries, compression queue, pending
    reports, robustness counters. Per-section framing means a decode
    failure names the section and byte offset where the stream went
    bad, and a corrupted region is caught by its own checksum before
    its bytes can be misread as structure.

    Decoding is strict: canonical-form checks (booleans and option tags
    must be 0/1, lengths must fit the remaining bytes) mean a
    successful decode implies the bytes are exactly what {!encode}
    produces for that snapshot. Corrupted input yields [Error], never a
    wrong snapshot and never an escaping exception. *)

val version : int
(** Codec format version stamped after the magic; {!decode} refuses any
    other. Independent of the checkpoint-envelope version (see
    {!Checkpoint.version}). *)

val encode : Rfid_core.Engine.snapshot -> string
(** Serialize to the portable format. Total cost is one linear pass
    plus the per-section checksums. *)

val decode : string -> (Rfid_core.Engine.snapshot, string) result
(** Parse and verify. All failure modes — bad magic, unsupported
    version, truncation, checksum mismatch, implausible length,
    non-canonical tag — return [Error] with the offending section and
    absolute byte offset. Never raises. *)

val adler32 : ?pos:int -> ?len:int -> string -> int
(** Adler-32 (RFC 1950) over [s.[pos .. pos+len-1]] (default: the whole
    string) — the checksum used by the section framing, the checkpoint
    envelope, and the write-ahead log records. *)

(** Shared wire primitives, exported for {!Wal}'s record bodies so both
    formats stay byte-compatible by construction. All multi-byte values
    are little-endian; readers raise {!Prim.Corrupt} (caught and
    converted to [Error] by the owning decoder) on truncation or
    non-canonical input. *)
module Prim : sig
  exception Corrupt of int * string
  (** [(absolute offset, what went wrong)] *)

  (** {2 Writers (append to a [Buffer.t])} *)

  val add_u8 : Buffer.t -> int -> unit
  val add_i64 : Buffer.t -> int64 -> unit
  val add_int : Buffer.t -> int -> unit
  val add_f : Buffer.t -> float -> unit
  val add_bool : Buffer.t -> bool -> unit
  val add_vec3 : Buffer.t -> Rfid_geom.Vec3.t -> unit
  val add_tag : Buffer.t -> Rfid_model.Types.tag -> unit
  val add_opt : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a option -> unit
  val add_list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit
  val add_array : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a array -> unit

  (** {2 Readers (consume from a cursor)} *)

  type cursor

  val cursor : ?pos:int -> ?len:int -> string -> cursor
  val pos : cursor -> int
  val remaining : cursor -> int
  val r_u8 : cursor -> int
  val r_i64 : cursor -> int64
  val r_int : cursor -> int
  val r_f : cursor -> float
  val r_bool : cursor -> bool
  val r_vec3 : cursor -> Rfid_geom.Vec3.t
  val r_tag : cursor -> Rfid_model.Types.tag

  val r_len : cursor -> elem_bytes:int -> int
  (** A list/array length, validated against the bytes actually left
      ([elem_bytes] is a lower bound on the per-element encoding), so a
      corrupted length can never drive a huge allocation. *)

  val r_opt : (cursor -> 'a) -> cursor -> 'a option
  val r_list : ?elem_bytes:int -> (cursor -> 'a) -> cursor -> 'a list
  val r_array : ?elem_bytes:int -> dummy:'a -> (cursor -> 'a) -> cursor -> 'a array
end
