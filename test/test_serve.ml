(* The serving layer: framing, the bounded admission queue, the
   posterior query layer, the protocol state machine — and the
   PROTOCOL.md conformance runner, which executes every `session`
   block of the spec verbatim against Rfid_serve.Core and compares
   replies byte for byte. *)

open Rfid_serve

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Framing *)

let test_framing_lines () =
  let b = Framing.create_buffer () in
  Alcotest.(check (list string))
    "two lines, one partial"
    [ "alpha"; "beta" ]
    (Framing.feed b "alpha\nbeta\ngam"
    |> List.map (function Framing.Line l -> l | Framing.Overflow -> "<overflow>"));
  Alcotest.(check int) "partial buffered" 3 (Framing.pending_bytes b);
  Alcotest.(check (list string))
    "completion joins the partial" [ "gamma" ]
    (Framing.feed b "ma\n"
    |> List.map (function Framing.Line l -> l | Framing.Overflow -> "<overflow>"))

let test_framing_crlf () =
  let b = Framing.create_buffer () in
  Alcotest.(check (list string))
    "CRLF stripped, empty line kept" [ "one"; ""; "two" ]
    (Framing.feed b "one\r\n\r\ntwo\n"
    |> List.map (function Framing.Line l -> l | Framing.Overflow -> "<overflow>"))

let test_framing_overflow () =
  let b = Framing.create_buffer () in
  let big = String.make (Framing.max_line_bytes + 10) 'x' in
  let events = Framing.feed b (big ^ "\nafter\n") in
  (match events with
  | [ Framing.Overflow; Framing.Line "after" ] -> ()
  | _ -> Alcotest.fail "expected [Overflow; Line after]");
  Alcotest.(check int) "buffer drained" 0 (Framing.pending_bytes b)

let test_float_str () =
  List.iter
    (fun v ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "round-trips %h" v)
        v
        (float_of_string (Framing.float_str v)))
    [ 0.; 1.; -1.; 0.1; 1. /. 3.; 1e-300; 1.7976931348623157e308;
      4.9406564584124654e-324; 2.496219962922915; -0.00035816813938 ];
  Alcotest.(check string) "nan" "nan" (Framing.float_str Float.nan);
  Alcotest.(check string) "inf" "inf" (Framing.float_str Float.infinity)

(* ------------------------------------------------------------------ *)
(* Admission *)

let test_admission () =
  let q = Admission.create ~cap:2 in
  Alcotest.(check bool) "offer 1" true (Admission.offer q 1);
  Alcotest.(check bool) "offer 2" true (Admission.offer q 2);
  Alcotest.(check bool) "offer 3 refused" false (Admission.offer q 3);
  Alcotest.(check int) "overflow counted" 1 (Admission.overflows q);
  Alcotest.(check (option int)) "fifo" (Some 1) (Admission.take q);
  Alcotest.(check bool) "room again" true (Admission.offer q 3);
  Alcotest.(check (option int)) "order kept" (Some 2) (Admission.take q);
  Alcotest.(check (option int)) "tail" (Some 3) (Admission.take q);
  Alcotest.(check (option int)) "empty" None (Admission.take q)

(* ------------------------------------------------------------------ *)
(* Shared fixture *)

let boot = lazy (Bootstrap.make ~objects:8 ~seed:42 ~particles:60 ())

let observation epoch x y tags =
  {
    Rfid_model.Types.o_epoch = epoch;
    o_reported_loc = Rfid_geom.Vec3.make x y 0.;
    o_read_tags = tags;
  }

let feed_engine boot obs_list =
  let engine = Bootstrap.fresh_engine boot in
  let guard = Bootstrap.fresh_guard boot in
  List.iter
    (fun obs ->
      match Rfid_robust.Ingest.step_engine guard engine obs with
      | Ok _ -> ()
      | Error (_, msg) -> Alcotest.failf "guard halted: %s" msg)
    obs_list;
  engine

let sample_obs =
  [
    observation 1 0.0 (-1.0) [ Rfid_model.Types.Object_tag 3; Rfid_model.Types.Shelf_tag 0 ];
    observation 2 0.1 (-0.9) [ Rfid_model.Types.Object_tag 3 ];
    observation 3 0.2 (-0.8) [ Rfid_model.Types.Object_tag 5 ];
  ]

(* ------------------------------------------------------------------ *)
(* Query *)

let test_range_mass () =
  let boot = Lazy.force boot in
  let engine = feed_engine boot sample_obs in
  let q = Query.create () in
  let whole =
    Query.range q ~engine ~min_x:(-1000.) ~min_y:(-1000.) ~max_x:1000.
      ~max_y:1000. ~min_mass:0.5
  in
  Alcotest.(check (list int))
    "both observed objects, ascending id" [ 3; 5 ]
    (List.map (fun a -> a.Query.a_obj) whole);
  List.iter
    (fun a ->
      if a.Query.a_mass < 0.999 || a.Query.a_mass > 1.0 then
        Alcotest.failf "whole-plane mass should be ~1, got %g for obj %d"
          a.Query.a_mass a.Query.a_obj)
    whole;
  (* A sub-box can only lose mass, and a far-away box loses all of it. *)
  let sub =
    Query.range q ~engine ~min_x:(-2.) ~min_y:(-2.) ~max_x:6. ~max_y:2.
      ~min_mass:0.001
  in
  List.iter
    (fun (a : Query.answer) ->
      let full = List.find (fun w -> w.Query.a_obj = a.Query.a_obj) whole in
      if a.Query.a_mass > full.Query.a_mass +. 1e-12 then
        Alcotest.failf "sub-box mass exceeds whole-plane mass for obj %d"
          a.Query.a_obj)
    sub;
  Alcotest.(check (list int))
    "disjoint box is empty" []
    (List.map
       (fun a -> a.Query.a_obj)
       (Query.range q ~engine ~min_x:500. ~min_y:500. ~max_x:600. ~max_y:600.
          ~min_mass:0.001));
  Alcotest.check_raises "inverted box rejected"
    (Invalid_argument "Query.range: min bound exceeds max bound") (fun () ->
      ignore
        (Query.range q ~engine ~min_x:5. ~min_y:0. ~max_x:(-5.) ~max_y:1.
           ~min_mass:0.01))

let test_event_ring () =
  let q = Query.create ~events_keep:3 () in
  for e = 1 to 5 do
    Query.record_event q
      (Rfid_core.Event.make ~epoch:e ~obj:e ~loc:(Rfid_geom.Vec3.make 0. 0. 0.) ())
  done;
  Alcotest.(check int) "seen counts everything" 5 (Query.events_seen q);
  Alcotest.(check int) "dropped = seen - keep" 2 (Query.events_dropped q);
  Alcotest.(check (list int))
    "ring keeps the newest, oldest first" [ 3; 4; 5 ]
    (List.map
       (fun (ev : Rfid_core.Event.t) -> ev.Rfid_core.Event.ev_epoch)
       (Query.events_since q ~epoch:0));
  Alcotest.(check (list int))
    "since filters" [ 5 ]
    (List.map
       (fun (ev : Rfid_core.Event.t) -> ev.Rfid_core.Event.ev_epoch)
       (Query.events_since q ~epoch:5))

(* ------------------------------------------------------------------ *)
(* Core: wire answers vs a direct engine replay *)

let make_core ?admit_cap ?events_keep boot =
  Core.create ~guard:(Bootstrap.fresh_guard boot)
    ~engine:(Bootstrap.fresh_engine boot) ~num_objects:boot.Bootstrap.num_objects
    ?admit_cap ?events_keep ()

let req core line =
  let reply, _close = Core.handle_line core line in
  reply

let test_core_consistency () =
  let boot = Lazy.force boot in
  let core = make_core boot in
  List.iter
    (fun obs ->
      let reply =
        req core ("PUT " ^ Rfid_model.Trace_io.observation_to_line obs)
      in
      if String.length reply < 3 || String.sub reply 0 3 <> "OK " then
        Alcotest.failf "PUT not acked: %s" (String.trim reply))
    sample_obs;
  Alcotest.(check string) "SYNC reaches the last epoch" "OK 3\n" (req core "SYNC");
  (* The same observations through a bare guard + engine must yield
     byte-identical AT answers: the wire adds buffering, not noise. *)
  let reference = feed_engine boot sample_obs in
  List.iter
    (fun obj ->
      match Rfid_core.Engine.estimate reference obj with
      | None ->
          Alcotest.(check string)
            (Printf.sprintf "AT %d unknown both ways" obj)
            (Printf.sprintf "ERR 404 unknown-object %d\n" obj)
            (req core (Printf.sprintf "AT %d" obj))
      | Some (loc, cov) ->
          let sd =
            sqrt (Float.max 0. ((cov.(0).(0) +. cov.(1).(1)) /. 2.))
          in
          let expected =
            Printf.sprintf "OK %d %d %s %s %s %s\n" obj
              (Rfid_core.Engine.epoch reference)
              (Framing.float_str loc.Rfid_geom.Vec3.x)
              (Framing.float_str loc.Rfid_geom.Vec3.y)
              (Framing.float_str loc.Rfid_geom.Vec3.z)
              (Framing.float_str sd)
          in
          Alcotest.(check string)
            (Printf.sprintf "AT %d matches direct replay" obj)
            expected
            (req core (Printf.sprintf "AT %d" obj)))
    (List.init 8 Fun.id)

let test_core_backpressure () =
  let boot = Lazy.force boot in
  let core = make_core ~admit_cap:2 boot in
  Alcotest.(check string) "pause" "OK paused\n" (req core "PAUSE");
  Alcotest.(check string) "put 1" "OK 1\n" (req core "PUT 1,0.0,-1.0,0.0,obj:3");
  Alcotest.(check int) "paused tick is a no-op" 0 (Core.tick core ~max_steps:100);
  Alcotest.(check string) "put 2" "OK 2\n" (req core "PUT 2,0.1,-0.9,0.0,obj:3");
  Alcotest.(check string)
    "put 3 refused, not dropped" "BUSY 2/2\n"
    (req core "PUT 3,0.2,-0.8,0.0,obj:3");
  Alcotest.(check string) "resume" "OK running\n" (req core "RESUME");
  Alcotest.(check int) "tick drains" 2 (Core.tick core ~max_steps:100);
  Alcotest.(check string)
    "room again" "OK 1\n"
    (req core "PUT 3,0.2,-0.8,0.0,obj:3");
  let stats = req core "STATS" in
  if not (contains_sub stats "busy_rejections 1") then
    Alcotest.failf "STATS should count 1 busy rejection:\n%s" stats

(* ------------------------------------------------------------------ *)
(* OpenMetrics + UDP push *)

let test_openmetrics () =
  let module M = Rfid_obs.Metrics in
  let reg = M.create () in
  M.incr (M.counter reg "serve.epochs") 3;
  M.set (M.gauge reg "queue depth") 7.5;
  let h = M.histogram reg "latency" in
  M.observe h 0.002;
  M.observe h 0.004;
  ignore (M.histogram reg "empty");
  let text = Rfid_obs.Openmetrics.render reg in
  List.iter
    (fun needle ->
      if not (contains_sub text needle) then
        Alcotest.failf "missing %S in rendered metrics:\n%s" needle text)
    [
      "# TYPE serve_epochs counter";
      "serve_epochs_total 3";
      "# TYPE queue_depth gauge";
      "queue_depth 7.5";
      "# TYPE latency summary";
      "latency{quantile=\"0.5\"}";
      "latency_sum 0.006";
      "latency_count 2";
      "empty_count 0";
      "# EOF";
    ];
  if contains_sub text "empty{quantile" then
    Alcotest.fail "empty histogram must not emit quantiles";
  Alcotest.(check string)
    "sanitize" "_9a_b:c_d"
    (Rfid_obs.Openmetrics.sanitize_name "9a-b:c d")

let test_push_udp () =
  let recv = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close recv with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind recv (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      let port =
        match Unix.getsockname recv with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> Alcotest.fail "no port"
      in
      let p =
        match Push.create ~host:"127.0.0.1" ~port with
        | Ok p -> p
        | Error msg -> Alcotest.failf "push create: %s" msg
      in
      (* A payload bigger than one datagram, to force line-boundary
         chunking. *)
      let lines = List.init 200 (fun i -> Printf.sprintf "metric_%03d %d" i i) in
      let text = String.concat "\n" lines ^ "\n" in
      Push.send p text;
      Alcotest.(check int) "no send errors" 0 (Push.send_errors p);
      if Push.sends p < 2 then
        Alcotest.failf "expected chunking into >1 datagram, got %d" (Push.sends p);
      let buf = Bytes.create 65536 in
      let received = Buffer.create (String.length text) in
      Unix.setsockopt_float recv Unix.SO_RCVTIMEO 2.0;
      (try
         while Buffer.length received < String.length text do
           let n, _ = Unix.recvfrom recv buf 0 (Bytes.length buf) [] in
           let chunk = Bytes.sub_string buf 0 n in
           (* Every datagram must end at a line boundary. *)
           if n > 0 && chunk.[n - 1] <> '\n' then
             Alcotest.fail "datagram split mid-line";
           Buffer.add_string received chunk
         done
       with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
         Alcotest.fail "timed out waiting for pushed datagrams");
      Alcotest.(check string)
        "reassembled payload" text (Buffer.contents received);
      Push.close p)

(* ------------------------------------------------------------------ *)
(* PROTOCOL.md conformance *)

type exchange = { request : string option; expected : string list }
(* [request = None] is the connection greeting. *)

type session = { flags : (string * string) list; exchanges : exchange list }

let parse_sessions path =
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  let sessions = ref [] in
  let current : string list ref = ref [] in
  let in_session = ref false in
  List.iter
    (fun line ->
      if !in_session then
        if line = "```" then begin
          in_session := false;
          sessions := List.rev !current :: !sessions;
          current := []
        end
        else current := line :: !current
      else if line = "```session" then in_session := true)
    lines;
  List.rev_map
    (fun body ->
      let flags = ref [] in
      let exchanges = ref [] in
      let pending_req = ref None in
      let pending_exp = ref [] in
      let close_exchange () =
        if !pending_req <> None || !pending_exp <> [] then begin
          exchanges :=
            { request = !pending_req; expected = List.rev !pending_exp }
            :: !exchanges;
          pending_req := None;
          pending_exp := []
        end
      in
      List.iter
        (fun line ->
          if String.length line >= 9 && String.sub line 0 9 = "# server " then begin
            let toks =
              String.split_on_char ' '
                (String.sub line 9 (String.length line - 9))
              |> List.filter (fun s -> s <> "")
            in
            let rec pair = function
              | k :: v :: rest when String.length k > 2 && String.sub k 0 2 = "--"
                ->
                  flags :=
                    (String.sub k 2 (String.length k - 2), v) :: !flags;
                  pair rest
              | _ -> ()
            in
            pair toks
          end
          else if String.length line >= 3 && String.sub line 0 3 = "C: " then begin
            close_exchange ();
            pending_req := Some (String.sub line 3 (String.length line - 3))
          end
          else if line = "C:" then begin
            close_exchange ();
            pending_req := Some ""
          end
          else if String.length line >= 3 && String.sub line 0 3 = "S: " then
            pending_exp := String.sub line 3 (String.length line - 3) :: !pending_exp)
        body;
      close_exchange ();
      { flags = !flags; exchanges = List.rev !exchanges })
    !sessions
  |> List.rev

let core_of_flags flags =
  let geti key default =
    match List.assoc_opt key flags with
    | Some v -> int_of_string v
    | None -> default
  in
  let objects = geti "objects" 16 in
  let seed = geti "seed" 42 in
  let variant =
    match List.assoc_opt "variant" flags with
    | Some "unfactorized" -> Rfid_core.Config.Unfactorized
    | Some "factorized" -> Rfid_core.Config.Factorized
    | Some "compressed" -> Rfid_core.Config.Factorized_compressed
    | Some "indexed" | None -> Rfid_core.Config.Factorized_indexed
    | Some other -> Alcotest.failf "unknown variant %s in # server line" other
  in
  let boot =
    Bootstrap.make ~objects ~seed ~variant ~particles:(geti "particles" 200) ()
  in
  Core.create ~guard:(Bootstrap.fresh_guard boot)
    ~engine:(Bootstrap.fresh_engine boot) ~num_objects:objects
    ~admit_cap:(geti "admit-cap" 1024) ~events_keep:(geti "events-keep" 4096) ()

let split_reply reply =
  if reply = "" then []
  else begin
    if reply.[String.length reply - 1] <> '\n' then
      Alcotest.failf "reply not newline-terminated: %S" reply;
    String.split_on_char '\n' (String.sub reply 0 (String.length reply - 1))
  end

let check_exchange session_no what expected actual =
  if expected <> actual then
    Alcotest.failf
      "session %d, %s:\nexpected:\n%s\nactual:\n%s\n\n\
       (update the session block in PROTOCOL.md to match reality, or fix \
       the server)"
      session_no what
      (String.concat "\n" (List.map (fun l -> "S: " ^ l) expected))
      (String.concat "\n" (List.map (fun l -> "S: " ^ l) actual))

let protocol_md_path () =
  (* Under `dune runtest` the cwd is _build/default/test and the spec
     is a declared dep one level up; under `dune exec` from the source
     tree it is in the cwd. *)
  match List.find_opt Sys.file_exists [ "../PROTOCOL.md"; "PROTOCOL.md" ] with
  | Some p -> p
  | None -> Alcotest.fail "PROTOCOL.md not found next to the test"

let test_protocol_conformance () =
  let sessions = parse_sessions (protocol_md_path ()) in
  if List.length sessions < 4 then
    Alcotest.failf "expected several session blocks in PROTOCOL.md, found %d"
      (List.length sessions);
  List.iteri
    (fun i session ->
      let core = core_of_flags session.flags in
      List.iter
        (fun ex ->
          match ex.request with
          | None ->
              check_exchange (i + 1) "greeting" ex.expected
                (split_reply (Core.greeting core))
          | Some request ->
              let reply, _close = Core.handle_line core request in
              check_exchange (i + 1)
                (Printf.sprintf "request %S" request)
                ex.expected (split_reply reply))
        session.exchanges)
    sessions

let suite =
  ( "serve",
    [
      Alcotest.test_case "framing: line reassembly" `Quick test_framing_lines;
      Alcotest.test_case "framing: CRLF tolerated" `Quick test_framing_crlf;
      Alcotest.test_case "framing: overflow resyncs" `Quick test_framing_overflow;
      Alcotest.test_case "framing: float round-trip" `Quick test_float_str;
      Alcotest.test_case "admission: bounded fifo" `Quick test_admission;
      Alcotest.test_case "query: range mass" `Quick test_range_mass;
      Alcotest.test_case "query: event ring" `Quick test_event_ring;
      Alcotest.test_case "core: wire = direct replay" `Quick test_core_consistency;
      Alcotest.test_case "core: backpressure" `Quick test_core_backpressure;
      Alcotest.test_case "openmetrics: render" `Quick test_openmetrics;
      Alcotest.test_case "push: UDP loopback" `Quick test_push_udp;
      Alcotest.test_case "PROTOCOL.md conformance" `Quick test_protocol_conformance;
    ] )
