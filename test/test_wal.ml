(* The write-ahead log: record round-trips, torn-tail handling, and the
   headline recovery property — checkpoint + WAL replay alone (no
   re-fed input) reproduces the uninterrupted run bit-identically. *)
open Rfid_model
module Wal = Rfid_robust.Wal
module Ingest = Rfid_robust.Ingest

let v = Util.vec3

let obs e loc tags = { Types.o_epoch = e; o_reported_loc = loc; o_read_tags = tags }

let sample_entries =
  [
    Wal.Step (obs 0 (v 1. 2. 0.) [ Types.Object_tag 3; Types.Shelf_tag 1 ]);
    Wal.Degraded (1, [ Types.Shelf_tag 2 ]);
    Wal.Step (obs 2 (v 1.5 2.5 0.1) []);
    Wal.Degraded (3, []);
    Wal.Step (obs 7 (v (-4.) 0.25 0.) [ Types.Object_tag 0 ]);
  ]

let with_tmp f =
  let path = Filename.temp_file "rfid_wal" ".log" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let write_all ?fsync_every path entries =
  let w = Wal.create_writer ?fsync_every ~path () in
  List.iter (Wal.append w) entries;
  Wal.close w

let check_entries what expected (tail : Wal.tail) =
  Alcotest.(check int) (what ^ ": entry count") (List.length expected)
    (List.length tail.Wal.entries);
  List.iter2
    (fun a b ->
      if a <> b then
        Alcotest.failf "%s: entry mismatch (epoch %d vs %d)" what
          (Wal.entry_epoch a) (Wal.entry_epoch b))
    expected tail.Wal.entries

let test_roundtrip () =
  with_tmp (fun path ->
      write_all path sample_entries;
      let tail = Wal.read ~path in
      check_entries "round-trip" sample_entries tail;
      Alcotest.(check int) "nothing discarded" 0 tail.Wal.discarded_bytes;
      Alcotest.(check bool) "no note" true (tail.Wal.note = None))

let test_missing_file () =
  let tail = Wal.read ~path:"/nonexistent/rfid-wal.log" in
  check_entries "missing file" [] tail;
  Alcotest.(check int) "no valid bytes" 0 tail.Wal.valid_bytes

let file_contents path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let overwrite path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_torn_tail () =
  with_tmp (fun path ->
      write_all path sample_entries;
      let whole = file_contents path in
      let clean = Wal.read ~path in
      (* Chop mid-way into the final record: the first four survive. *)
      overwrite path (String.sub whole 0 (String.length whole - 5));
      let tail = Wal.read ~path in
      check_entries "torn tail" (List.filteri (fun i _ -> i < 4) sample_entries) tail;
      Alcotest.(check bool) "tear noted" true (tail.Wal.note <> None);
      Alcotest.(check bool) "discard counted" true (tail.Wal.discarded_bytes > 0);
      (* Repair: truncate to the valid prefix, reopen for append, and
         the log is whole again. *)
      Wal.truncate ~path ~valid_bytes:tail.Wal.valid_bytes;
      let w = Wal.create_writer ~append:true ~path () in
      Wal.append w (List.nth sample_entries 4);
      Wal.close w;
      check_entries "after repair + append" sample_entries (Wal.read ~path);
      ignore clean)

let test_corrupt_middle () =
  with_tmp (fun path ->
      write_all path sample_entries;
      let whole = file_contents path in
      (* Flip a byte inside the second record's body: reading stops at
         record 2 and keeps only record 1 — a corrupt middle must not
         let later records (silently reordered history) through. *)
      let second_start =
        (* first record: magic(4) + len(4) + body + sum(4) *)
        let body_len =
          Int32.to_int (String.get_int32_le whole 4) land 0xffffffff
        in
        12 + body_len
      in
      let buf = Bytes.of_string whole in
      let p = second_start + 9 in
      Bytes.set buf p (Char.chr (Char.code (Bytes.get buf p) lxor 0xff));
      overwrite path (Bytes.to_string buf);
      let tail = Wal.read ~path in
      check_entries "corrupt middle" [ List.hd sample_entries ] tail;
      Alcotest.(check int) "valid prefix is record 1" second_start tail.Wal.valid_bytes;
      Alcotest.(check bool) "note present" true (tail.Wal.note <> None))

let test_garbage_file () =
  with_tmp (fun path ->
      overwrite path "this is not a WAL at all, not even close\n";
      let tail = Wal.read ~path in
      check_entries "garbage" [] tail;
      Alcotest.(check int) "no valid bytes" 0 tail.Wal.valid_bytes;
      Alcotest.(check bool) "note present" true (tail.Wal.note <> None))

(* ------------------------------------------------------------------ *)
(* Recovery equivalence: checkpoint + WAL tail, nothing else.          *)

let test_checkpoint_plus_wal_recovery () =
  let wh = Rfid_sim.Warehouse.layout ~num_objects:4 () in
  let trace =
    Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
      ~object_locs:wh.Rfid_sim.Warehouse.object_locs
      ~start:(Rfid_sim.Warehouse.reader_start wh)
      ~path:(Rfid_sim.Trace_gen.straight_pass wh ~rounds:1)
      ~config:(Rfid_sim.Trace_gen.default_config ())
      (Rfid_prob.Rng.create ~seed:53)
  in
  let config =
    Rfid_core.Config.create ~variant:Rfid_core.Config.Factorized_indexed
      ~num_reader_particles:25 ~num_object_particles:30 ()
  in
  let make () =
    Rfid_core.Engine.create ~world:wh.Rfid_sim.Warehouse.world
      ~params:Params.default ~config
      ~init_reader:trace.Trace.steps.(0).Trace.true_reader ~num_objects:4 ~seed:17 ()
  in
  let stream = Trace.observations trace in
  let n = List.length stream in
  let cut = n / 2 in
  with_tmp (fun wal_path ->
      (* Original run: journal every admitted epoch, checkpoint (in
         memory) at the cut, "crash" at 3/4 — the tail past the crash
         point is never seen again. *)
      let engine = make () in
      let guard = Ingest.create ~max_object_id:4 () in
      let writer = Wal.create_writer ~fsync_every:3 ~path:wal_path () in
      Rfid_core.Engine.set_journal engine
        (Some
           (fun entry ->
             Wal.append writer
               (match entry with
               | Rfid_core.Engine.Journal_step o -> Wal.Step o
               | Rfid_core.Engine.Journal_degraded (e, tags) -> Wal.Degraded (e, tags))));
      let snapshot = ref None in
      let original_events = ref [] in
      List.iter
        (fun (o : Types.observation) ->
          if o.Types.o_epoch < cut * 3 / 2 then begin
            (* Degrade a few epochs so Degraded WAL entries are exercised. *)
            (if o.Types.o_epoch mod 11 = 5 then
               match
                 Ingest.step_engine guard engine
                   { o with Types.o_reported_loc = Util.vec3 Float.nan 0. 0. }
               with
               | Ok evs -> original_events := List.rev_append evs !original_events
               | Error (_, m) -> Alcotest.fail m
             else
               match Ingest.step_engine guard engine o with
               | Ok evs -> original_events := List.rev_append evs !original_events
               | Error (_, m) -> Alcotest.fail m);
            if o.Types.o_epoch = cut then
              snapshot := Some (Rfid_core.Engine.snapshot engine)
          end)
        stream;
      Wal.close writer;
      Rfid_core.Engine.set_journal engine None;
      let original_events = List.rev !original_events in
      (* Recovery: restore the checkpoint, replay ONLY the WAL. *)
      let snapshot = Option.get !snapshot in
      let recovered =
        Rfid_core.Engine.restore ~world:wh.Rfid_sim.Warehouse.world
          ~params:Params.default ~config snapshot
      in
      let fresh_guard = Ingest.create ~max_object_id:4 () in
      let tail = Wal.read ~path:wal_path in
      Alcotest.(check bool) "log is clean" true (tail.Wal.note = None);
      match Wal.replay ~guard:fresh_guard ~engine:recovered tail.Wal.entries with
      | Error msg -> Alcotest.fail msg
      | Ok replayed ->
          (* The replayed engine must agree with the original exactly:
             same epoch, same event tail past the checkpoint, same
             posterior estimates. *)
          Alcotest.(check int) "epoch matches"
            (Rfid_core.Engine.epoch engine)
            (Rfid_core.Engine.epoch recovered);
          let past_cut =
            List.filter
              (fun (e : Rfid_core.Event.t) -> e.Rfid_core.Event.ev_epoch > cut)
              original_events
          in
          Alcotest.(check int) "replayed event count" (List.length past_cut)
            (List.length replayed);
          List.iter2
            (fun (a : Rfid_core.Event.t) b ->
              if a <> b then
                Alcotest.failf "replayed event differs:@ %a@ vs@ %a"
                  Rfid_core.Event.pp a Rfid_core.Event.pp b)
            past_cut replayed;
          let continue engine =
            List.concat_map
              (fun (o : Types.observation) ->
                match Ingest.step_engine (Ingest.create ~max_object_id:4 ()) engine o with
                | Ok evs -> evs
                | Error (_, m) -> Alcotest.fail m)
              (List.filter
                 (fun (o : Types.observation) ->
                   o.Types.o_epoch > Rfid_core.Engine.epoch engine)
                 stream)
            @ Rfid_core.Engine.flush engine
          in
          let a = continue engine and b = continue recovered in
          Alcotest.(check int) "continuation event count" (List.length a)
            (List.length b);
          if a <> b then Alcotest.fail "post-recovery continuation diverged")

let suite =
  ( "wal",
    [
      Alcotest.test_case "record round-trip" `Quick test_roundtrip;
      Alcotest.test_case "missing file is empty" `Quick test_missing_file;
      Alcotest.test_case "torn tail discarded + repaired" `Quick test_torn_tail;
      Alcotest.test_case "corrupt middle stops cleanly" `Quick test_corrupt_middle;
      Alcotest.test_case "garbage file yields nothing" `Quick test_garbage_file;
      Alcotest.test_case "checkpoint + wal replay is bit-identical" `Slow
        test_checkpoint_plus_wal_recovery;
    ] )
