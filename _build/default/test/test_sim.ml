open Rfid_sim
open Rfid_model
open Rfid_geom

(* Truth sensors *)

let test_cone_sensor_shape () =
  let s = Truth_sensor.cone ~rr_major:0.9 ~range:3. () in
  let p = s.Truth_sensor.read_prob in
  Util.check_close "major uniform" 0.9 (p ~d:1. ~theta:0.1);
  Util.check_close "major boundary" 0.9 (p ~d:2.9 ~theta:(14. *. Float.pi /. 180.));
  Util.check_close "beyond range" 0. (p ~d:3.1 ~theta:0.);
  Util.check_close "beyond minor angle" 0. (p ~d:1. ~theta:0.5);
  (* Minor range decays linearly from rr_major to 0. *)
  let mid = (15. +. 22.5) /. 2. *. Float.pi /. 180. in
  Util.check_close ~eps:1e-6 "minor midpoint" 0.45 (p ~d:1. ~theta:mid);
  (* Negative angle symmetric *)
  Util.check_close "symmetric" (p ~d:1. ~theta:0.2) (p ~d:1. ~theta:(-0.2));
  Util.check_raises_invalid "bad rr" (fun () -> ignore (Truth_sensor.cone ~rr_major:1.5 ()))

let test_spherical_sensor_shape () =
  let s = Truth_sensor.spherical ~rr_center:0.8 ~range:4. ~angle_falloff:2. () in
  let p = s.Truth_sensor.read_prob in
  Util.check_close "center" 0.8 (p ~d:1. ~theta:0.);
  Alcotest.(check bool) "wide angle still reads" true (p ~d:1. ~theta:1.5 > 0.);
  Util.check_close "angle falloff zero" 0. (p ~d:1. ~theta:2.1);
  Util.check_close "beyond range" 0. (p ~d:4.5 ~theta:0.);
  (* Radial fade over last 20%. *)
  Alcotest.(check bool) "fade near edge" true (p ~d:3.9 ~theta:0. < p ~d:3. ~theta:0.)

let test_sensor_probabilities_valid () =
  List.iter
    (fun s ->
      for i = 0 to 50 do
        for j = 0 to 20 do
          let d = float_of_int i /. 10. and theta = float_of_int j /. 20. *. Float.pi in
          let p = s.Truth_sensor.read_prob ~d ~theta in
          Util.check_in_range "prob" ~lo:0. ~hi:1. p
        done
      done)
    [ Truth_sensor.cone (); Truth_sensor.spherical () ]

(* Warehouse *)

let test_warehouse_layout () =
  let wh = Warehouse.layout ~num_objects:25 () in
  Alcotest.(check int) "3 shelves for 25 objects" 3
    (World.num_shelves wh.Warehouse.world);
  Alcotest.(check int) "objects" 25 (Array.length wh.Warehouse.object_locs);
  (* Objects are on shelves and evenly spaced. *)
  Array.iteri
    (fun i loc ->
      if not (World.contains wh.Warehouse.world loc) then
        Alcotest.failf "object %d off-shelf" i)
    wh.Warehouse.object_locs;
  let spacing =
    wh.Warehouse.object_locs.(1).Vec3.y -. wh.Warehouse.object_locs.(0).Vec3.y
  in
  Util.check_close "spacing" 0.5 spacing;
  Util.check_raises_invalid "zero objects" (fun () ->
      ignore (Warehouse.layout ~num_objects:0 ()))

let test_warehouse_shelf_tags_known () =
  let wh = Warehouse.layout ~num_objects:30 () in
  Alcotest.(check int) "tag per shelf" (World.num_shelves wh.Warehouse.world)
    (List.length (World.shelf_tags wh.Warehouse.world))

(* Trace_gen *)

let gen_trace ?(config = Trace_gen.default_config ()) ?(rounds = 1) ?(seed = 9)
    ?(num_objects = 12) () =
  let wh = Warehouse.layout ~num_objects () in
  let path = Trace_gen.straight_pass wh ~rounds in
  let rng = Rfid_prob.Rng.create ~seed in
  ( wh,
    Trace_gen.run ~world:wh.Warehouse.world ~object_locs:wh.Warehouse.object_locs
      ~start:(Warehouse.reader_start wh) ~path ~config rng )

let test_trace_structure () =
  let _, t = gen_trace () in
  Alcotest.(check bool) "has epochs" true (Trace.epochs t > 50);
  Array.iteri
    (fun i s -> Alcotest.(check int) "sequential epochs" i s.Trace.epoch)
    t.Trace.steps

let test_trace_objects_get_read () =
  let _, t = gen_trace () in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun s ->
      List.iter
        (fun tag ->
          match tag with
          | Types.Object_tag i -> Hashtbl.replace seen i ()
          | Types.Shelf_tag _ -> ())
        s.Trace.observation.Types.o_read_tags)
    t.Trace.steps;
  (* With a full pass at 100% major read rate every object is read. *)
  Alcotest.(check int) "all objects read" 12 (Hashtbl.length seen)

let test_trace_rounds_double_epochs () =
  let _, t1 = gen_trace ~rounds:1 () in
  let _, t2 = gen_trace ~rounds:2 () in
  Alcotest.(check int) "two rounds" (2 * Trace.epochs t1) (Trace.epochs t2)

let test_read_every () =
  let config = { (Trace_gen.default_config ()) with Trace_gen.read_every = 3 } in
  let _, t = gen_trace ~config () in
  Array.iter
    (fun s ->
      if s.Trace.epoch mod 3 <> 0 then
        Alcotest.(check (list pass)) "no reads off-cycle" []
          s.Trace.observation.Types.o_read_tags)
    t.Trace.steps

let test_movement_injection () =
  let target = Util.vec3 2.5 1.25 0. in
  let config =
    {
      (Trace_gen.default_config ()) with
      Trace_gen.movements = [ { Trace_gen.move_epoch = 30; move_obj = 4; move_to = target } ];
    }
  in
  let _, t = gen_trace ~config () in
  Util.check_vec3 "before move" t.Trace.steps.(0).Trace.true_object_locs.(4)
    t.Trace.steps.(29).Trace.true_object_locs.(4);
  Util.check_vec3 "after move" target t.Trace.steps.(30).Trace.true_object_locs.(4);
  Util.check_vec3 "stays" target t.Trace.steps.(60).Trace.true_object_locs.(4);
  Util.check_raises_invalid "unknown object" (fun () ->
      let bad =
        {
          (Trace_gen.default_config ()) with
          Trace_gen.movements =
            [ { Trace_gen.move_epoch = 1; move_obj = 99; move_to = target } ];
        }
      in
      ignore (gen_trace ~config:bad ()))

let test_gaussian_report_noise () =
  let sensing =
    Location_sensing.create ~bias:(Util.vec3 0. 0.5 0.) ~sigma:(Util.vec3 0.01 0.01 0.) ()
  in
  let config =
    { (Trace_gen.default_config ()) with Trace_gen.location_noise = Trace_gen.Gaussian_report sensing }
  in
  let _, t = gen_trace ~config () in
  (* Reported y should be about 0.5 above true y on average. *)
  let diffs =
    Array.map
      (fun s ->
        s.Trace.observation.Types.o_reported_loc.Vec3.y
        -. s.Trace.true_reader.Reader_state.loc.Vec3.y)
      t.Trace.steps
  in
  Util.check_close ~eps:0.02 "systematic y offset" 0.5 (Rfid_prob.Stats.mean diffs)

let test_dead_reckoning_drift () =
  let config =
    {
      (Trace_gen.default_config ()) with
      Trace_gen.location_noise = Trace_gen.Dead_reckoning;
      velocity_bias = Util.vec3 0. 0.005 0.;
      drift_cap = Some 1.0;
    }
  in
  let _, t = gen_trace ~config () in
  let last = t.Trace.steps.(Trace.epochs t - 1) in
  let dev =
    Vec3.dist_xy last.Trace.true_reader.Reader_state.loc
      last.Trace.observation.Types.o_reported_loc
  in
  Alcotest.(check bool) "drift accumulated" true (dev > 0.2);
  Alcotest.(check bool) "drift capped" true (dev <= 1.0 +. 1e-9)

let test_validation () =
  Util.check_raises_invalid "bad read_every" (fun () ->
      let bad = { (Trace_gen.default_config ()) with Trace_gen.read_every = 0 } in
      ignore (gen_trace ~config:bad ()));
  Util.check_raises_invalid "bad rounds" (fun () ->
      let wh = Warehouse.layout ~num_objects:4 () in
      ignore (Trace_gen.straight_pass wh ~rounds:0))

(* Lab *)

let test_lab_geometry () =
  let lab = Lab.deployment () in
  Alcotest.(check int) "70 object tags" Lab.num_objects
    (Array.length lab.Lab.object_locs);
  Alcotest.(check int) "10 reference tags" 10
    (List.length (World.shelf_tags lab.Lab.world));
  (* Object tags sit on the front edge of the imagined shelves. *)
  Array.iter
    (fun (loc : Vec3.t) ->
      Util.check_close "row x" 1.5 (Float.abs loc.Vec3.x))
    lab.Lab.object_locs

let test_lab_shelf_sizes () =
  let small = Lab.deployment ~shelf_size:Lab.Small () in
  let large = Lab.deployment ~shelf_size:Lab.Large () in
  let width w =
    let s = (World.shelves w).(0).World.surface in
    s.Box2.max_x -. s.Box2.min_x
  in
  Util.check_close "small width" 0.66 (width small.Lab.world);
  Util.check_close "large width" 2.6 (width large.Lab.world)

let test_lab_timeouts () =
  List.iter
    (fun ms -> ignore (Lab.deployment ~timeout_ms:ms ()))
    [ 250; 500; 750 ];
  Util.check_raises_invalid "bad timeout" (fun () ->
      ignore (Lab.deployment ~timeout_ms:100 ()));
  (* Longer timeout widens the sensing region. *)
  let r ms = (Lab.deployment ~timeout_ms:ms ()).Lab.sensor.Truth_sensor.range in
  Alcotest.(check bool) "range grows" true (r 250 < r 500 && r 500 < r 750)

let test_lab_scan () =
  let lab = Lab.deployment () in
  let t = Lab.scan lab ~seed:3 in
  Alcotest.(check int) "object universe" Lab.num_objects t.Trace.num_objects;
  Alcotest.(check bool) "two passes" true (Trace.epochs t > 250);
  (* Reference tags appear in the readings. *)
  let shelf_reads =
    Array.fold_left
      (fun acc s ->
        acc
        + List.length
            (List.filter
               (fun tag -> match tag with Types.Shelf_tag _ -> true | _ -> false)
               s.Trace.observation.Types.o_read_tags))
      0 t.Trace.steps
  in
  Alcotest.(check bool) "reference tags read" true (shelf_reads > 50);
  (* Determinism. *)
  let t2 = Lab.scan lab ~seed:3 in
  Alcotest.(check bool) "deterministic" true (t.Trace.steps = t2.Trace.steps)

let suite =
  ( "sim",
    [
      Alcotest.test_case "cone sensor shape" `Quick test_cone_sensor_shape;
      Alcotest.test_case "spherical sensor shape" `Quick test_spherical_sensor_shape;
      Alcotest.test_case "sensor probabilities valid" `Quick
        test_sensor_probabilities_valid;
      Alcotest.test_case "warehouse layout" `Quick test_warehouse_layout;
      Alcotest.test_case "warehouse shelf tags" `Quick test_warehouse_shelf_tags_known;
      Alcotest.test_case "trace structure" `Quick test_trace_structure;
      Alcotest.test_case "all objects read" `Quick test_trace_objects_get_read;
      Alcotest.test_case "rounds double epochs" `Quick test_trace_rounds_double_epochs;
      Alcotest.test_case "read_every throttling" `Quick test_read_every;
      Alcotest.test_case "movement injection" `Quick test_movement_injection;
      Alcotest.test_case "gaussian report noise" `Quick test_gaussian_report_noise;
      Alcotest.test_case "dead reckoning drift" `Quick test_dead_reckoning_drift;
      Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "lab geometry" `Quick test_lab_geometry;
      Alcotest.test_case "lab shelf sizes" `Quick test_lab_shelf_sizes;
      Alcotest.test_case "lab timeouts" `Quick test_lab_timeouts;
      Alcotest.test_case "lab scan" `Quick test_lab_scan;
    ] )
