type 'a node = Leaf of (Box2.t * 'a) list | Inner of (Box2.t * 'a node) list

type 'a t = {
  mutable root : 'a node;
  mutable count : int;
  max_entries : int;
  min_entries : int;
}

let create ?(max_entries = 8) () =
  if max_entries < 4 then invalid_arg "Rtree.create: max_entries must be >= 4";
  {
    root = Leaf [];
    count = 0;
    max_entries;
    min_entries = Int.max 1 (max_entries / 3);
  }

let mbr_of_entries box_of = function
  | [] -> invalid_arg "Rtree: empty node"
  | e :: rest -> List.fold_left (fun acc x -> Box2.union acc (box_of x)) (box_of e) rest

let node_mbr = function
  | Leaf entries -> mbr_of_entries fst entries
  | Inner entries -> mbr_of_entries fst entries

(* Quadratic split (Guttman 1984): seed with the pair wasting the most
   area, then greedily assign remaining entries to the group whose mbr
   grows least, forcing assignment when a group must absorb the rest to
   reach minimum fill. *)
let quadratic_split ~min_entries entries =
  let arr = Array.of_list entries in
  let n = Array.length arr in
  let box i = fst arr.(i) in
  let seed_a = ref 0 and seed_b = ref 1 and worst = ref neg_infinity in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let dead =
        Box2.area (Box2.union (box i) (box j)) -. Box2.area (box i) -. Box2.area (box j)
      in
      if dead > !worst then begin
        worst := dead;
        seed_a := i;
        seed_b := j
      end
    done
  done;
  let group_a = ref [ arr.(!seed_a) ] and group_b = ref [ arr.(!seed_b) ] in
  let mbr_a = ref (box !seed_a) and mbr_b = ref (box !seed_b) in
  let remaining = ref [] in
  for i = n - 1 downto 0 do
    if i <> !seed_a && i <> !seed_b then remaining := arr.(i) :: !remaining
  done;
  let assign_a e =
    group_a := e :: !group_a;
    mbr_a := Box2.union !mbr_a (fst e)
  and assign_b e =
    group_b := e :: !group_b;
    mbr_b := Box2.union !mbr_b (fst e)
  in
  let rec distribute = function
    | [] -> ()
    | rest when List.length !group_a + List.length rest <= min_entries ->
        List.iter assign_a rest
    | rest when List.length !group_b + List.length rest <= min_entries ->
        List.iter assign_b rest
    | e :: rest ->
        let grow_a = Box2.enlargement !mbr_a (fst e)
        and grow_b = Box2.enlargement !mbr_b (fst e) in
        if
          grow_a < grow_b
          || (grow_a = grow_b && Box2.area !mbr_a <= Box2.area !mbr_b)
        then assign_a e
        else assign_b e;
        distribute rest
  in
  distribute !remaining;
  (!group_a, !group_b)

let choose_child children box =
  (* Least enlargement, ties by least area. Returns the chosen entry and
     the others. *)
  let best = ref None in
  List.iteri
    (fun i (cbox, _) ->
      let grow = Box2.enlargement cbox box in
      let a = Box2.area cbox in
      match !best with
      | None -> best := Some (i, grow, a)
      | Some (_, g, ba) when grow < g || (grow = g && a < ba) -> best := Some (i, grow, a)
      | Some _ -> ())
    children;
  match !best with
  | None -> invalid_arg "Rtree: choose_child on empty node"
  | Some (i, _, _) -> i

let rec insert_node t node box value =
  match node with
  | Leaf entries ->
      let entries = (box, value) :: entries in
      if List.length entries <= t.max_entries then `One (Leaf entries)
      else begin
        let a, b = quadratic_split ~min_entries:t.min_entries entries in
        `Split (Leaf a, Leaf b)
      end
  | Inner children ->
      let idx = choose_child children box in
      let updated =
        List.mapi
          (fun i (cbox, child) ->
            if i = idx then
              match insert_node t child box value with
              | `One child' -> [ (Box2.union cbox box, child') ]
              | `Split (l, r) -> [ (node_mbr l, l); (node_mbr r, r) ]
            else [ (cbox, child) ])
          children
        |> List.concat
      in
      if List.length updated <= t.max_entries then `One (Inner updated)
      else begin
        let a, b = quadratic_split ~min_entries:t.min_entries updated in
        `Split (Inner a, Inner b)
      end

let insert t box value =
  (match insert_node t t.root box value with
  | `One root -> t.root <- root
  | `Split (l, r) -> t.root <- Inner [ (node_mbr l, l); (node_mbr r, r) ]);
  t.count <- t.count + 1

let iter_overlapping t probe f =
  let rec walk = function
    | Leaf entries ->
        List.iter (fun (box, v) -> if Box2.intersects box probe then f box v) entries
    | Inner children ->
        List.iter (fun (box, child) -> if Box2.intersects box probe then walk child) children
  in
  if t.count > 0 then walk t.root

let query t probe =
  let acc = ref [] in
  iter_overlapping t probe (fun _ v -> acc := v :: !acc);
  !acc

module Hits = struct
  type 'a t = { mutable buf : 'a array; mutable len : int; dummy : 'a }

  let create ~dummy = { buf = [||]; len = 0; dummy }
  let length h = h.len

  let get h i =
    if i < 0 || i >= h.len then invalid_arg "Rtree.Hits.get: index out of range";
    h.buf.(i)

  let clear h =
    (* Drop value references so a cleared buffer does not pin old hits
       for the GC; the array itself is kept for reuse. *)
    Array.fill h.buf 0 h.len h.dummy;
    h.len <- 0

  let push h v =
    let cap = Array.length h.buf in
    if h.len = cap then begin
      let bigger = Array.make (Int.max 4 (2 * cap)) h.dummy in
      Array.blit h.buf 0 bigger 0 cap;
      h.buf <- bigger
    end;
    h.buf.(h.len) <- v;
    h.len <- h.len + 1
end

(* [query] materializes a list per call; the filters probe the shelf
   tree and the sensing-region index every epoch, so the hot path takes
   this variant instead: hits append to a caller-owned growable buffer
   (cleared here first), and the walk is a direct recursion rather than
   an [iter_overlapping] closure, so a steady-state query allocates
   nothing. Hits arrive in visit order — the reverse of [query]'s list
   order, since that list is built by prepending. *)
let query_into t probe hits =
  Hits.clear hits;
  let rec walk = function
    | Leaf entries ->
        List.iter (fun (box, v) -> if Box2.intersects box probe then Hits.push hits v) entries
    | Inner children ->
        List.iter (fun (box, child) -> if Box2.intersects box probe then walk child) children
  in
  if t.count > 0 then walk t.root

let size t = t.count

let depth t =
  let rec go = function Leaf _ -> 1 | Inner ((_, c) :: _) -> 1 + go c | Inner [] -> 1 in
  go t.root

let clear t =
  t.root <- Leaf [];
  t.count <- 0
