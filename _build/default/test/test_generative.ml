open Rfid_model
open Rfid_geom

let run_trace ?(epochs = 50) ?(num_objects = 5) ?(seed = 11) () =
  let world = Util.two_shelf_world () in
  let init_reader = Reader_state.make ~loc:(Util.vec3 0. 0. 0.) ~heading:0. in
  let rng = Rfid_prob.Rng.create ~seed in
  Generative.run ~world ~params:Params.default ~init_reader ~num_objects ~epochs rng

let test_shape () =
  let t = run_trace () in
  Alcotest.(check int) "epochs" 50 (Trace.epochs t);
  Alcotest.(check int) "objects" 5 t.Trace.num_objects;
  Array.iteri
    (fun i s ->
      Alcotest.(check int) "epoch numbering" i s.Trace.epoch;
      Alcotest.(check int) "objs per step" 5 (Array.length s.Trace.true_object_locs);
      Alcotest.(check int) "obs epoch" i s.Trace.observation.Types.o_epoch)
    t.Trace.steps

let test_objects_start_on_shelves () =
  let t = run_trace () in
  let world = t.Trace.world in
  Array.iter
    (fun loc ->
      if not (World.contains world loc) then Alcotest.fail "object off-shelf")
    t.Trace.steps.(0).Trace.true_object_locs

let test_reader_moves_with_velocity () =
  let t = run_trace ~epochs:100 () in
  let first = t.Trace.steps.(0).Trace.true_reader.Reader_state.loc in
  let last = t.Trace.steps.(99).Trace.true_reader.Reader_state.loc in
  (* Default velocity is 0.1 ft/epoch along y. *)
  Util.check_close ~eps:1.0 "y displacement" 9.9 (last.Vec3.y -. first.Vec3.y)

let test_read_rate_matches_sensor () =
  (* A shelf tag right in front of a stationary reader should be read at
     roughly the sensor-model rate. *)
  let world = Util.two_shelf_world () in
  let motion =
    Motion_model.create ~velocity:Vec3.zero ~sigma:(Util.vec3 0.0001 0.0001 0.)
      ~heading_sigma:0. ()
  in
  let params = Params.create ~motion () in
  let init_reader = Reader_state.make ~loc:(Util.vec3 0. 5. 0.) ~heading:0. in
  let rng = Rfid_prob.Rng.create ~seed:3 in
  let epochs = 4000 in
  let t = Generative.run ~world ~params ~init_reader ~num_objects:0 ~epochs rng in
  let reads =
    Array.fold_left
      (fun acc s ->
        acc
        + List.length
            (List.filter
               (fun tag -> Types.tag_equal tag (Types.Shelf_tag 0))
               s.Trace.observation.Types.o_read_tags))
      0 t.Trace.steps
  in
  let expected =
    Sensor_model.read_prob Params.default.Params.sensor
      ~reader_loc:init_reader.Reader_state.loc ~reader_heading:0.
      ~tag_loc:(World.shelf_tag_location world 0)
  in
  Util.check_close ~eps:0.05 "empirical read rate"
    expected
    (float_of_int reads /. float_of_int epochs)

let test_determinism () =
  let a = run_trace ~seed:5 () and b = run_trace ~seed:5 () in
  Alcotest.(check bool) "same seed same trace" true (a.Trace.steps = b.Trace.steps);
  let c = run_trace ~seed:6 () in
  Alcotest.(check bool) "different seed differs" false (a.Trace.steps = c.Trace.steps)

let test_validation () =
  Util.check_raises_invalid "negative objects" (fun () ->
      ignore (run_trace ~num_objects:(-1) ()));
  Util.check_raises_invalid "negative epochs" (fun () ->
      ignore (run_trace ~epochs:(-1) ()))

let test_trace_accessors () =
  let t = run_trace () in
  let loc = Trace.true_object_loc t ~epoch:10 ~obj:2 in
  Util.check_vec3 "accessor consistent" t.Trace.steps.(10).Trace.true_object_locs.(2) loc;
  Util.check_raises_invalid "bad epoch" (fun () ->
      ignore (Trace.true_object_loc t ~epoch:99 ~obj:0));
  Util.check_raises_invalid "bad object" (fun () ->
      ignore (Trace.true_object_loc t ~epoch:0 ~obj:99));
  Alcotest.(check int) "observations length" 50 (List.length (Trace.observations t));
  Alcotest.(check int) "final locs" 5 (Array.length (Trace.final_object_locs t))

let test_trace_concat () =
  let a = run_trace ~epochs:10 () and b = run_trace ~epochs:5 ~seed:12 () in
  let c = Trace.concat a b in
  Alcotest.(check int) "combined epochs" 15 (Trace.epochs c);
  Alcotest.(check int) "renumbered" 14 c.Trace.steps.(14).Trace.epoch;
  Alcotest.(check int) "obs renumbered" 14
    c.Trace.steps.(14).Trace.observation.Types.o_epoch;
  let d = run_trace ~num_objects:3 ~epochs:5 () in
  Util.check_raises_invalid "object count mismatch" (fun () ->
      ignore (Trace.concat a d))

let suite =
  ( "generative",
    [
      Alcotest.test_case "trace shape" `Quick test_shape;
      Alcotest.test_case "objects start on shelves" `Quick
        test_objects_start_on_shelves;
      Alcotest.test_case "reader follows velocity" `Quick test_reader_moves_with_velocity;
      Alcotest.test_case "read rate matches sensor" `Quick test_read_rate_matches_sensor;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "trace accessors" `Quick test_trace_accessors;
      Alcotest.test_case "trace concat" `Quick test_trace_concat;
    ] )
