(* A taste of the §V-D scalability results: per-reading processing cost
   of the engine variants as the warehouse grows. The full sweep
   (Fig. 5(i)/(j)) lives in bench/main.exe.

   Run with:  dune exec examples/scalability.exe *)

let () =
  let cone = Rfid_sim.Truth_sensor.cone () in
  let sensor =
    Rfid_learn.Supervised.fit_sensor ~read_prob:cone.Rfid_sim.Truth_sensor.read_prob
      ~seed:2 ()
  in
  let params = Rfid_model.Params.create ~sensor () in
  Printf.printf "%8s  %-20s %12s %10s %10s\n" "#objects" "variant" "ms/reading"
    "XY err" "max scope";
  List.iter
    (fun n ->
      let wh = Rfid_sim.Warehouse.layout ~num_objects:n () in
      let trace =
        Rfid_sim.Trace_gen.run ~world:wh.Rfid_sim.Warehouse.world
          ~object_locs:wh.Rfid_sim.Warehouse.object_locs
          ~start:(Rfid_sim.Warehouse.reader_start wh)
          ~path:(Rfid_sim.Trace_gen.straight_pass ~speed:0.2 wh ~rounds:2)
          ~config:(Rfid_sim.Trace_gen.default_config ())
          (Rfid_prob.Rng.create ~seed:31)
      in
      List.iter
        (fun (label, variant) ->
          let config =
            Rfid_core.Config.create ~variant ~num_reader_particles:100
              ~num_object_particles:200 ()
          in
          let r = Rfid_eval.Runner.run_engine ~params ~config ~seed:4 trace in
          Printf.printf "%8d  %-20s %12.3f %10.3f %10d\n%!" n label
            r.Rfid_eval.Runner.ms_per_reading
            r.Rfid_eval.Runner.error.Rfid_eval.Metrics.mean_xy
            r.Rfid_eval.Runner.max_objects_processed)
        [
          ("factorized", Rfid_core.Config.Factorized);
          ("factorized+index", Rfid_core.Config.Factorized_indexed);
          ("f+index+compress", Rfid_core.Config.Factorized_compressed);
        ])
    [ 25; 100; 400 ]
