lib/core/common.mli: Config Rfid_geom Rfid_model Rfid_prob
