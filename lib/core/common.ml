open Rfid_geom
open Rfid_model

module Sensor_cache = struct
  type t = { range : float; half_angle : float }

  let create ~threshold ~max_range sensor =
    let range = Float.min max_range (Sensor_model.detection_range ~threshold sensor) in
    let half_angle =
      Sensor_model.detection_half_angle ~threshold sensor ~d:(Float.max 0.1 (range /. 2.))
    in
    { range; half_angle }
end

let init_cone (cache : Sensor_cache.t) ~overestimate ~reader_loc ~heading =
  let range = Float.max 0.5 (overestimate *. cache.Sensor_cache.range) in
  let half_angle =
    Float.min Float.pi (Float.max 0.2 (overestimate *. cache.Sensor_cache.half_angle))
  in
  Cone.make ~apex:reader_loc ~heading ~half_angle ~range

let sample_initial_location cache ~overestimate ~world ~reader_loc ~heading rng =
  let cone = init_cone cache ~overestimate ~reader_loc ~heading in
  let p = Cone.sample cone rng in
  if World.contains world p then p else World.clamp_to_shelves world p

(* Batched evidence-driven (re)initialization: every [step]-th particle
   of [store] draws a reader pointer and a fresh cone-sampled location,
   written straight into the slabs. This is [fresh_particle_into] of the
   factored filter unrolled: the cone's range/half-angle depend only on
   the cache, so they are computed once; the apex/heading come from the
   sensor memo's pose slabs (refreshed from the very reader states the
   scalar path read); [Cone.sample], [World.contains] and
   [World.clamp_to_shelves] are replicated operation for operation on
   scalars. Same draws from [rng] in the same order, same stored floats,
   bit for bit — but no [Vec3.t]/[Cone.t] per particle, which made the
   init path the dominant steady-state allocator. *)
let fill_fresh_particles cache ~overestimate ~world ~pre ~rw ~rng ~store ~step =
  if step <= 0 then invalid_arg "Common.fill_fresh_particles: step must be positive";
  let range = Float.max 0.5 (overestimate *. cache.Sensor_cache.range) in
  let half_angle =
    Float.min Float.pi (Float.max 0.2 (overestimate *. cache.Sensor_cache.half_angle))
  in
  let rx, ry, rz, rh = Sensor_model.pre_poses pre in
  let shelves = World.shelves world in
  let ns = Array.length shelves in
  let n = Rfid_prob.Particle_store.length store in
  let xs, ys, zs, lw, ridx = Rfid_prob.Particle_store.backing store in
  let j = ref 0 and inside = ref false in
  let best = ref (-1) and best_d = ref infinity in
  let i = ref 0 in
  while !i < n do
    let idx = Rfid_prob.Rng.categorical rng rw in
    let ax = Float.Array.unsafe_get rx idx in
    let ay = Float.Array.unsafe_get ry idx in
    let az = Float.Array.unsafe_get rz idx in
    let ah = Float.Array.unsafe_get rh idx in
    (* [Cone.sample] on the cone with apex/heading at pose [idx]. *)
    let u = Rfid_prob.Rng.float rng in
    let r = range *. sqrt u in
    let a = Rfid_prob.Rng.uniform rng ~lo:(ah -. half_angle) ~hi:(ah +. half_angle) in
    let x = ax +. (r *. cos a) in
    let y = ay +. (r *. sin a) in
    (* [World.contains]: first shelf surface containing (x, y). *)
    j := 0;
    inside := false;
    while (not !inside) && !j < ns do
      let b = shelves.(!j).World.surface in
      if x >= b.Box2.min_x && x <= b.Box2.max_x && y >= b.Box2.min_y && y <= b.Box2.max_y
      then inside := true
      else incr j
    done;
    if !inside then begin
      Float.Array.unsafe_set xs !i x;
      Float.Array.unsafe_set ys !i y
    end
    else begin
      (* [World.clamp_to_shelves]: nearest-shelf clamp, first strict
         improvement wins. *)
      best := -1;
      best_d := infinity;
      for s = 0 to ns - 1 do
        let b = shelves.(s).World.surface in
        let qx = Float.max b.Box2.min_x (Float.min b.Box2.max_x x) in
        let qy = Float.max b.Box2.min_y (Float.min b.Box2.max_y y) in
        let dx = x -. qx and dy = y -. qy in
        let d = sqrt ((dx *. dx) +. (dy *. dy)) in
        if !best < 0 || d < !best_d then begin
          best := s;
          best_d := d
        end
      done;
      if !best < 0 then begin
        Float.Array.unsafe_set xs !i x;
        Float.Array.unsafe_set ys !i y
      end
      else begin
        let b = shelves.(!best).World.surface in
        Float.Array.unsafe_set xs !i (Float.max b.Box2.min_x (Float.min b.Box2.max_x x));
        Float.Array.unsafe_set ys !i (Float.max b.Box2.min_y (Float.min b.Box2.max_y y))
      end
    end;
    Float.Array.unsafe_set zs !i az;
    Array.unsafe_set ridx !i idx;
    Float.Array.unsafe_set lw !i 0.;
    i := !i + step
  done

let propose_heading model ~motion ~epoch ~current rng =
  match model with
  | Config.Known_heading f -> f epoch
  | Config.Track_heading { jump_prob } ->
      if Rfid_prob.Rng.bernoulli rng ~p:jump_prob then
        Rfid_prob.Rng.uniform rng ~lo:(-.Float.pi) ~hi:Float.pi
      else
        current
        +. motion.Motion_model.heading_drift
        +. Rfid_prob.Rng.gaussian rng ~sigma:motion.Motion_model.heading_sigma ()

let proposal_delta proposal ~motion ~last_reported ~reported =
  match proposal with
  | Config.From_velocity -> motion.Motion_model.velocity
  | Config.From_reported_displacement | Config.From_reported_location -> (
      match last_reported with
      | Some prev -> Vec3.sub reported prev
      | None -> motion.Motion_model.velocity)

let proposal_sigma proposal ~motion ~sensing =
  match proposal with
  | Config.From_velocity -> motion.Motion_model.sigma
  | Config.From_reported_displacement | Config.From_reported_location ->
      let m = motion.Motion_model.sigma in
      let s = sensing.Location_sensing.sigma in
      let axis m s = sqrt ((m *. m) +. (2. *. s *. s)) in
      Vec3.make (axis m.Vec3.x s.Vec3.x) (axis m.Vec3.y s.Vec3.y) (axis m.Vec3.z s.Vec3.z)

let jitter p ~sigma rng =
  Vec3.make
    (p.Vec3.x +. Rfid_prob.Rng.gaussian rng ~sigma:sigma.Vec3.x ())
    (p.Vec3.y +. Rfid_prob.Rng.gaussian rng ~sigma:sigma.Vec3.y ())
    (p.Vec3.z +. Rfid_prob.Rng.gaussian rng ~sigma:sigma.Vec3.z ())

let resample scheme rng w ~n =
  match scheme with
  | Config.Systematic -> Rfid_prob.Resample.systematic rng w ~n
  | Config.Multinomial -> Rfid_prob.Resample.multinomial rng w ~n
  | Config.Residual -> Rfid_prob.Resample.residual rng w ~n

(* Same dispatch into the scratch-buffer variants: identical draws and
   indices, no allocation. *)
let resample_into scheme rng w ~n ~out =
  match scheme with
  | Config.Systematic -> Rfid_prob.Resample.systematic_into rng w ~n ~out
  | Config.Multinomial -> Rfid_prob.Resample.multinomial_into rng w ~n ~out
  | Config.Residual -> Rfid_prob.Resample.residual_into rng w ~n ~out
