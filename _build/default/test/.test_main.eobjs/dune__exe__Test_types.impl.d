test/test_types.ml: Alcotest List Rfid_geom Rfid_model Types Util
