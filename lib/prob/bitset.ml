(* Dense growable bitset over non-negative ints, used by the filters as
   reusable scratch for scope/pending/inside sets. The representation is
   an [int array] of 62-usable-bit words plus a high-water mark, so
   [clear] and the ascending scans cost O(words touched so far), not
   O(capacity): a filter tracking ids up to 5000 sweeps ~81 words per
   epoch regardless of how large the backing array has grown. *)

let bits_per_word = Sys.int_size  (* 63 on 64-bit; every bit of the boxed-int payload *)

type t = {
  mutable words : int array;
  mutable hwm : int;  (* 1 + highest word index ever set since the last clear *)
  mutable card : int;
}

let create ?(capacity = 0) () =
  let nwords = if capacity <= 0 then 1 else 1 + ((capacity - 1) / bits_per_word) in
  { words = Array.make nwords 0; hwm = 0; card = 0 }

let cardinal t = t.card
let is_empty t = t.card = 0

(* Kernighan popcount: one iteration per set bit. The words here are
   sparse (a sensing scope is tens of ids), so this beats a SWAR
   popcount in practice and needs no 63-bit constant juggling. *)
let popcount w =
  let n = ref 0 and w = ref w in
  while !w <> 0 do
    w := !w land (!w - 1);
    incr n
  done;
  !n

let ensure_word t wi =
  let len = Array.length t.words in
  if wi >= len then begin
    let cap = Int.max (wi + 1) (2 * len) in
    let bigger = Array.make cap 0 in
    Array.blit t.words 0 bigger 0 len;
    t.words <- bigger
  end

let mem t i =
  if i < 0 then false
  else begin
    let wi = i / bits_per_word in
    wi < t.hwm && t.words.(wi) land (1 lsl (i mod bits_per_word)) <> 0
  end

let add t i =
  if i < 0 then invalid_arg "Bitset.add: negative element";
  let wi = i / bits_per_word in
  ensure_word t wi;
  let b = 1 lsl (i mod bits_per_word) in
  let w = t.words.(wi) in
  if w land b = 0 then begin
    t.words.(wi) <- w lor b;
    t.card <- t.card + 1;
    if wi >= t.hwm then t.hwm <- wi + 1
  end

let remove t i =
  if i >= 0 then begin
    let wi = i / bits_per_word in
    if wi < t.hwm then begin
      let b = 1 lsl (i mod bits_per_word) in
      let w = t.words.(wi) in
      if w land b <> 0 then begin
        t.words.(wi) <- w land lnot b;
        t.card <- t.card - 1
      end
    end
  end

let clear t =
  Array.fill t.words 0 t.hwm 0;
  t.hwm <- 0;
  t.card <- 0

let union_into ~into src =
  ensure_word into (src.hwm - 1);
  for wi = 0 to src.hwm - 1 do
    let s = src.words.(wi) in
    if s <> 0 then begin
      let d = into.words.(wi) in
      let fresh = s land lnot d in
      if fresh <> 0 then begin
        into.words.(wi) <- d lor fresh;
        into.card <- into.card + popcount fresh
      end
    end
  done;
  if src.hwm > into.hwm then into.hwm <- src.hwm

let iter t f =
  for wi = 0 to t.hwm - 1 do
    let w = ref t.words.(wi) in
    let base = wi * bits_per_word in
    while !w <> 0 do
      let low = !w land -(!w) in
      (* log2 of the isolated lowest bit, by logical shifting (the top
         word bit is the native sign bit, so arithmetic comparisons are
         off the table) — the loop runs once per set bit so the scan is
         ascending. *)
      let b = ref 0 and v = ref low in
      while !v <> 1 do
        v := !v lsr 1;
        incr b
      done;
      f (base + !b);
      w := !w land (!w - 1)
    done
  done

let fill_into t out =
  let n = ref 0 in
  for wi = 0 to t.hwm - 1 do
    let w = ref t.words.(wi) in
    let base = wi * bits_per_word in
    while !w <> 0 do
      let low = !w land -(!w) in
      let b = ref 0 and v = ref low in
      while !v <> 1 do
        v := !v lsr 1;
        incr b
      done;
      out.(!n) <- base + !b;
      incr n;
      w := !w land (!w - 1)
    done
  done;
  !n

let elements t =
  let acc = ref [] in
  iter t (fun i -> acc := i :: !acc);
  List.rev !acc
