open Rfid_model

let test_coef_roundtrip () =
  let m = Sensor_model.default in
  let m' = Sensor_model.of_coef (Sensor_model.to_coef m) in
  Alcotest.(check bool) "roundtrip" true (m = m');
  Util.check_raises_invalid "bad length" (fun () ->
      ignore (Sensor_model.of_coef [| 1.; 2. |]))

let test_features () =
  let f = Sensor_model.features ~d:2. ~theta:(-0.5) in
  Alcotest.(check int) "feature length" 5 (Array.length f);
  Util.check_close "intercept" 1. f.(0);
  Util.check_close "d" 2. f.(1);
  Util.check_close "d^2" 4. f.(2);
  Util.check_close "|theta|" 0.5 f.(3);
  Util.check_close "theta^2" 0.25 f.(4)

let test_monotone_decay () =
  let m = Sensor_model.default in
  let p0 = Sensor_model.read_prob_at m ~d:0.5 ~theta:0. in
  let p1 = Sensor_model.read_prob_at m ~d:2. ~theta:0. in
  let p2 = Sensor_model.read_prob_at m ~d:5. ~theta:0. in
  Alcotest.(check bool) "decays with distance" true (p0 > p1 && p1 > p2);
  let q1 = Sensor_model.read_prob_at m ~d:1. ~theta:0.2 in
  let q2 = Sensor_model.read_prob_at m ~d:1. ~theta:1.0 in
  Alcotest.(check bool) "decays with angle" true (q1 > q2);
  Alcotest.(check bool) "angle symmetric" true
    (Sensor_model.read_prob_at m ~d:1. ~theta:0.5
    = Sensor_model.read_prob_at m ~d:1. ~theta:(-0.5))

let test_geometry () =
  let reader_loc = Util.vec3 0. 0. 0. in
  let d, theta =
    Sensor_model.geometry ~reader_loc ~reader_heading:0. ~tag_loc:(Util.vec3 3. 0. 4.)
  in
  Util.check_close "3d distance" 5. d;
  Util.check_close ~eps:1e-9 "head-on angle" 0. theta;
  let _, theta_side =
    Sensor_model.geometry ~reader_loc ~reader_heading:0. ~tag_loc:(Util.vec3 0. 2. 0.)
  in
  Util.check_close ~eps:1e-9 "side angle" (Float.pi /. 2.) theta_side;
  (* Tag at the reader's own position: defined as angle 0. *)
  let d0, th0 = Sensor_model.geometry ~reader_loc ~reader_heading:1. ~tag_loc:reader_loc in
  Util.check_close "self distance" 0. d0;
  Util.check_close "self angle" 0. th0;
  (* Heading wrap: tag just across the -pi seam. *)
  let _, thw =
    Sensor_model.geometry ~reader_loc ~reader_heading:Float.pi
      ~tag_loc:(Util.vec3 (-1.) (-0.001) 0.)
  in
  Alcotest.(check bool) "wrapped angle small" true (thw < 0.01)

let test_log_prob_consistency () =
  let m = Sensor_model.default in
  let reader_loc = Util.vec3 0. 0. 0. and tag_loc = Util.vec3 1.5 0.3 0. in
  let p = Sensor_model.read_prob m ~reader_loc ~reader_heading:0. ~tag_loc in
  Util.check_close ~eps:1e-9 "log p(read)" (log p)
    (Sensor_model.log_prob m ~reader_loc ~reader_heading:0. ~tag_loc ~read:true);
  Util.check_close ~eps:1e-9 "log p(miss)" (log (1. -. p))
    (Sensor_model.log_prob m ~reader_loc ~reader_heading:0. ~tag_loc ~read:false)

let test_detection_range () =
  let m = Sensor_model.default in
  let r = Sensor_model.detection_range m in
  (* Just inside the range the probability is above threshold; just
     outside it is below. *)
  Alcotest.(check bool) "inside above" true
    (Sensor_model.read_prob_at m ~d:(r -. 0.05) ~theta:0. >= 0.02);
  Alcotest.(check bool) "outside below" true
    (Sensor_model.read_prob_at m ~d:(r +. 0.05) ~theta:0. < 0.02);
  (* A model that never reads anything. *)
  let dead = Sensor_model.of_coef [| -10.; 0.; 0.; 0.; 0. |] in
  Util.check_close "dead model range" 0. (Sensor_model.detection_range dead);
  (* A model with no distance decay saturates at the search cap. *)
  let flat = Sensor_model.of_coef [| 3.; 0.; 0.; -1.; -1. |] in
  Util.check_close "flat model range" 100. (Sensor_model.detection_range flat)

let test_detection_half_angle () =
  let m = Sensor_model.default in
  let a = Sensor_model.detection_half_angle m ~d:1. in
  Alcotest.(check bool) "inside above" true
    (Sensor_model.read_prob_at m ~d:1. ~theta:(a -. 0.01) >= 0.02);
  Alcotest.(check bool) "outside below" true
    (Sensor_model.read_prob_at m ~d:1. ~theta:(a +. 0.01) < 0.02);
  (* Omnidirectional in angle at close range. *)
  let omni = Sensor_model.of_coef [| 5.; -1.; 0.; 0.; 0. |] in
  Util.check_close "omni half angle" Float.pi
    (Sensor_model.detection_half_angle omni ~d:0.5)

let test_initialization_cone () =
  let m = Sensor_model.default in
  let c =
    Sensor_model.initialization_cone m ~reader_loc:(Util.vec3 1. 1. 0.)
      ~reader_heading:0.5
  in
  let r = Sensor_model.detection_range m in
  Util.check_close ~eps:1e-6 "overestimated range" (1.25 *. r) c.Rfid_geom.Cone.range;
  Util.check_close "apex" 1. c.Rfid_geom.Cone.apex.Rfid_geom.Vec3.x;
  Util.check_close "heading" 0.5 c.Rfid_geom.Cone.heading

let test_sensing_region_box () =
  let m = Sensor_model.default in
  let b = Sensor_model.sensing_region_box m ~reader_loc:(Util.vec3 0. 0. 0.) in
  let r = Sensor_model.detection_range m in
  Util.check_close ~eps:1e-6 "box half width" r b.Rfid_geom.Box2.max_x

let prop_read_prob_in_unit =
  Util.qcheck "read prob in [0,1] for any coefficients"
    QCheck.(
      pair
        (array_of_size (Gen.return 5) (float_range (-20.) 20.))
        (pair (float_range 0. 50.) (float_range (-4.) 4.)))
    (fun (coef, (d, theta)) ->
      let m = Sensor_model.of_coef coef in
      let p = Sensor_model.read_prob_at m ~d ~theta in
      p >= 0. && p <= 1.)

(* A memo over [n] random poses, with the pose data kept as plain
   arrays for reference computations against [log_prob]. *)
let random_memo ?(n = 24) m rng =
  let pre = Sensor_model.precompute m ~n in
  let poses =
    Array.init n (fun i ->
        let x = Rfid_prob.Rng.uniform rng ~lo:(-10.) ~hi:10. in
        let y = Rfid_prob.Rng.uniform rng ~lo:(-10.) ~hi:10. in
        let z = Rfid_prob.Rng.uniform rng ~lo:0. ~hi:3. in
        let heading = Rfid_prob.Rng.uniform rng ~lo:(-7.) ~hi:7. in
        Sensor_model.pre_set_pose pre i ~x ~y ~z ~heading;
        (x, y, z, heading))
  in
  (pre, poses)

let test_memo_bit_identical () =
  let m = Sensor_model.default in
  let rng = Rfid_prob.Rng.create ~seed:77 in
  let pre, poses = random_memo m rng in
  for _ = 1 to 200 do
    let i = Rfid_prob.Rng.int rng (Array.length poses) in
    let x, y, z, heading = poses.(i) in
    let tx = Rfid_prob.Rng.uniform rng ~lo:(-12.) ~hi:12. in
    let ty = Rfid_prob.Rng.uniform rng ~lo:(-12.) ~hi:12. in
    let tz = Rfid_prob.Rng.uniform rng ~lo:0. ~hi:3. in
    let read = Rfid_prob.Rng.bool rng in
    let expected =
      Sensor_model.log_prob m ~reader_loc:(Util.vec3 x y z) ~reader_heading:heading
        ~tag_loc:(Util.vec3 tx ty tz) ~read
    in
    Alcotest.(check (float 0.)) "log_prob_pre bit-identical to log_prob" expected
      (Sensor_model.log_prob_pre pre i ~tx ~ty ~tz ~read)
  done;
  Util.check_raises_invalid "pose index out of range" (fun () ->
      ignore (Sensor_model.log_prob_pre pre (-1) ~tx:0. ~ty:0. ~tz:0. ~read:true))

let test_accumulate_store_matches_per_particle () =
  let m = Sensor_model.default in
  let rng = Rfid_prob.Rng.create ~seed:78 in
  let pre, _ = random_memo m rng in
  let k = 60 in
  let store = Rfid_prob.Particle_store.create ~n:k in
  let reference = Array.make k 0. in
  for i = 0 to k - 1 do
    let x = Rfid_prob.Rng.uniform rng ~lo:(-12.) ~hi:12. in
    let y = Rfid_prob.Rng.uniform rng ~lo:(-12.) ~hi:12. in
    let z = Rfid_prob.Rng.uniform rng ~lo:0. ~hi:3. in
    let lw0 = Rfid_prob.Rng.uniform rng ~lo:(-1.) ~hi:0. in
    Rfid_prob.Particle_store.set_loc store i ~x ~y ~z;
    Rfid_prob.Particle_store.set_log_w store i lw0;
    Rfid_prob.Particle_store.set_reader store i
      (Rfid_prob.Rng.int rng (Sensor_model.pre_size pre));
    reference.(i) <- lw0
  done;
  List.iter
    (fun read ->
      for i = 0 to k - 1 do
        reference.(i) <-
          reference.(i)
          +. Sensor_model.log_prob_pre pre
               (Rfid_prob.Particle_store.reader store i)
               ~tx:(Rfid_prob.Particle_store.x store i)
               ~ty:(Rfid_prob.Particle_store.y store i)
               ~tz:(Rfid_prob.Particle_store.z store i)
               ~read
      done;
      Sensor_model.pre_accumulate_store pre store ~read;
      for i = 0 to k - 1 do
        Alcotest.(check (float 0.)) "store accumulation bit-identical" reference.(i)
          (Rfid_prob.Particle_store.log_w store i)
      done)
    [ true; false ]

let test_accumulate_tag_matches_per_pose () =
  let m = Sensor_model.default in
  let rng = Rfid_prob.Rng.create ~seed:79 in
  let pre, _ = random_memo m rng in
  let n = Sensor_model.pre_size pre in
  let tx = 1.5 and ty = -2.25 and tz = 1. in
  let miss_weight = 0.35 in
  List.iter
    (fun read ->
      let got = Array.make n 0.125 in
      let expected = Array.make n 0.125 in
      for r = 0 to n - 1 do
        let l = Sensor_model.log_prob_pre pre r ~tx ~ty ~tz ~read in
        let l = if read then l else miss_weight *. l in
        expected.(r) <- expected.(r) +. l
      done;
      Sensor_model.pre_accumulate_tag pre ~tx ~ty ~tz ~read ~miss_weight got;
      Alcotest.(check (array (float 0.))) "tag accumulation bit-identical" expected got)
    [ true; false ];
  Util.check_raises_invalid "short accumulator" (fun () ->
      Sensor_model.pre_accumulate_tag pre ~tx ~ty ~tz ~read:true ~miss_weight:1.
        (Array.make (n - 1) 0.))

let test_accumulate_joint_matches_per_row () =
  let m = Sensor_model.default in
  let rng = Rfid_prob.Rng.create ~seed:80 in
  let pre, _ = random_memo ~n:8 m rng in
  let n = Sensor_model.pre_size pre in
  let num_objects = 5 in
  let store = Rfid_prob.Particle_store.create ~n:(n * num_objects) in
  for s = 0 to (n * num_objects) - 1 do
    Rfid_prob.Particle_store.set_loc store s
      ~x:(Rfid_prob.Rng.uniform rng ~lo:(-12.) ~hi:12.)
      ~y:(Rfid_prob.Rng.uniform rng ~lo:(-12.) ~hi:12.)
      ~z:(Rfid_prob.Rng.uniform rng ~lo:0. ~hi:3.)
  done;
  List.iter
    (fun read ->
      let obj = 3 in
      let got = Array.make n 0. in
      let expected = Array.make n 0. in
      for r = 0 to n - 1 do
        let s = (r * num_objects) + obj in
        expected.(r) <-
          expected.(r)
          +. Sensor_model.log_prob_pre pre r
               ~tx:(Rfid_prob.Particle_store.x store s)
               ~ty:(Rfid_prob.Particle_store.y store s)
               ~tz:(Rfid_prob.Particle_store.z store s)
               ~read
      done;
      Sensor_model.pre_accumulate_joint_obj pre store ~obj ~num_objects ~read got;
      Alcotest.(check (array (float 0.))) "joint accumulation bit-identical" expected got)
    [ true; false ];
  Util.check_raises_invalid "object out of range" (fun () ->
      Sensor_model.pre_accumulate_joint_obj pre store ~obj:num_objects ~num_objects
        ~read:true (Array.make n 0.))

let suite =
  ( "sensor_model",
    [
      Alcotest.test_case "coef roundtrip" `Quick test_coef_roundtrip;
      Alcotest.test_case "features" `Quick test_features;
      Alcotest.test_case "monotone decay" `Quick test_monotone_decay;
      Alcotest.test_case "geometry" `Quick test_geometry;
      Alcotest.test_case "log prob consistency" `Quick test_log_prob_consistency;
      Alcotest.test_case "detection range" `Quick test_detection_range;
      Alcotest.test_case "detection half angle" `Quick test_detection_half_angle;
      Alcotest.test_case "initialization cone" `Quick test_initialization_cone;
      Alcotest.test_case "sensing region box" `Quick test_sensing_region_box;
      prop_read_prob_in_unit;
      Alcotest.test_case "memo bit-identical to log_prob" `Quick test_memo_bit_identical;
      Alcotest.test_case "batched store accumulation bit-identical" `Quick
        test_accumulate_store_matches_per_particle;
      Alcotest.test_case "batched tag accumulation bit-identical" `Quick
        test_accumulate_tag_matches_per_pose;
      Alcotest.test_case "batched joint accumulation bit-identical" `Quick
        test_accumulate_joint_matches_per_row;
    ] )
