open Rfid_prob

let mat_testable =
  let pp ppf m =
    Array.iter
      (fun row ->
        Array.iter (fun x -> Format.fprintf ppf "%8.4f " x) row;
        Format.fprintf ppf "@\n")
      m
  in
  let eq a b =
    Array.length a = Array.length b
    && Array.for_all2
         (fun ra rb ->
           Array.length ra = Array.length rb
           && Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) ra rb)
         a b
  in
  Alcotest.testable pp eq

let spd_3 = [| [| 4.; 1.; 0.5 |]; [| 1.; 3.; 0.2 |]; [| 0.5; 0.2; 2. |] |]

let test_identity_mul () =
  let i = Linalg.identity 3 in
  Alcotest.check mat_testable "I * A = A" spd_3 (Linalg.mat_mul i spd_3)

let test_transpose () =
  let a = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.check mat_testable "transpose" [| [| 1.; 3. |]; [| 2.; 4. |] |]
    (Linalg.transpose a)

let test_cholesky_roundtrip () =
  let l = Linalg.cholesky spd_3 in
  (* l must be lower triangular. *)
  Util.check_close "upper zero" 0. l.(0).(1);
  Util.check_close "upper zero" 0. l.(0).(2);
  Util.check_close "upper zero" 0. l.(1).(2);
  Alcotest.check mat_testable "L L^T = A" spd_3 (Linalg.mat_mul l (Linalg.transpose l))

let test_cholesky_semidefinite_jitter () =
  (* Rank-deficient covariance (all particles at one point). *)
  let zero = Array.make_matrix 3 3 0. in
  let l = Linalg.cholesky zero in
  Alcotest.(check int) "factor exists" 3 (Array.length l)

let test_cholesky_indefinite_rejected () =
  Util.check_raises_invalid "indefinite" (fun () ->
      Linalg.cholesky [| [| 1.; 0. |]; [| 0.; -5. |] |])

let test_solve_spd () =
  let b = [| 1.; 2.; 3. |] in
  let x = Linalg.solve_spd spd_3 b in
  let back = Linalg.mat_vec spd_3 x in
  Array.iteri (fun i v -> Util.check_close "A x = b" b.(i) v) back

let test_inverse_spd () =
  let inv = Linalg.inverse_spd spd_3 in
  Alcotest.check mat_testable "A * A^-1 = I" (Linalg.identity 3)
    (Linalg.mat_mul spd_3 inv)

let test_log_det () =
  (* det of diag(2, 3) = 6 *)
  let d = [| [| 2.; 0. |]; [| 0.; 3. |] |] in
  Util.check_close "log det" (log 6.) (Linalg.log_det_spd d)

let test_solve_gauss () =
  (* Non-symmetric system. *)
  let a = [| [| 0.; 2. |]; [| 3.; 1. |] |] in
  (* needs pivoting: a00 = 0 *)
  let x = Linalg.solve_gauss a [| 4.; 5. |] in
  Util.check_close "x0" 1. x.(0);
  Util.check_close "x1" 2. x.(1);
  Util.check_raises_invalid "singular" (fun () ->
      Linalg.solve_gauss [| [| 1.; 1. |]; [| 1.; 1. |] |] [| 1.; 2. |])

let test_dot_outer () =
  Util.check_close "dot" 11. (Linalg.dot [| 1.; 2. |] [| 3.; 4. |]);
  let o = Linalg.outer [| 1.; 2. |] [| 3.; 4. |] in
  Alcotest.check mat_testable "outer" [| [| 3.; 4. |]; [| 6.; 8. |] |] o;
  Util.check_raises_invalid "dot mismatch" (fun () -> Linalg.dot [| 1. |] [||])

let test_shape_checks () =
  Util.check_raises_invalid "ragged" (fun () ->
      Linalg.cholesky [| [| 1.; 0. |]; [| 0. |] |]);
  Util.check_raises_invalid "empty" (fun () -> Linalg.cholesky [||]);
  Util.check_raises_invalid "mat_vec mismatch" (fun () ->
      Linalg.mat_vec spd_3 [| 1. |])

(* Random SPD matrices: A = B B^T + eps I. *)
let random_spd rng n =
  let b =
    Array.init n (fun _ -> Array.init n (fun _ -> Rng.gaussian rng ()))
  in
  let a = Linalg.mat_mul b (Linalg.transpose b) in
  for i = 0 to n - 1 do
    a.(i).(i) <- a.(i).(i) +. 0.1
  done;
  a

let prop_cholesky_roundtrip =
  Util.qcheck ~count:100 "random SPD: L L^T = A" QCheck.(pair small_int (int_range 1 4))
    (fun (seed, n) ->
      let rng = Rfid_prob.Rng.create ~seed in
      let a = random_spd rng n in
      let l = Linalg.cholesky a in
      let back = Linalg.mat_mul l (Linalg.transpose l) in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Float.abs (back.(i).(j) -. a.(i).(j)) > 1e-6 then ok := false
        done
      done;
      !ok)

let prop_solve_roundtrip =
  Util.qcheck ~count:100 "random SPD solve: A x = b"
    QCheck.(pair small_int (int_range 1 4))
    (fun (seed, n) ->
      let rng = Rfid_prob.Rng.create ~seed in
      let a = random_spd rng n in
      let b = Array.init n (fun _ -> Rng.gaussian rng ()) in
      let x = Linalg.solve_spd a b in
      let back = Linalg.mat_vec a x in
      Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-6) b back)

let suite =
  ( "linalg",
    [
      Alcotest.test_case "identity multiply" `Quick test_identity_mul;
      Alcotest.test_case "transpose" `Quick test_transpose;
      Alcotest.test_case "cholesky roundtrip" `Quick test_cholesky_roundtrip;
      Alcotest.test_case "cholesky semidefinite jitter" `Quick
        test_cholesky_semidefinite_jitter;
      Alcotest.test_case "cholesky rejects indefinite" `Quick
        test_cholesky_indefinite_rejected;
      Alcotest.test_case "solve SPD" `Quick test_solve_spd;
      Alcotest.test_case "inverse SPD" `Quick test_inverse_spd;
      Alcotest.test_case "log det" `Quick test_log_det;
      Alcotest.test_case "gauss solve with pivoting" `Quick test_solve_gauss;
      Alcotest.test_case "dot and outer" `Quick test_dot_outer;
      Alcotest.test_case "shape validation" `Quick test_shape_checks;
      prop_cholesky_roundtrip;
      prop_solve_roundtrip;
    ] )
